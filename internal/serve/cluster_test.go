package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/runner"
	"repro/internal/serve"
)

// quickMember wraps a small session request as a cluster member.
func quickMember(id, mix string, cores, epochs int) serve.ClusterMemberRequest {
	return serve.ClusterMemberRequest{
		ID:      id,
		Session: quickReq(mix, cores, epochs, 0.6),
	}
}

// collectCluster drains a group's stream through ClusterNext and
// returns every record, then the finalized results.
func collectCluster(t *testing.T, m *serve.Manager, id string) ([]cluster.EpochRecord, []cluster.MemberResult) {
	t.Helper()
	var recs []cluster.EpochRecord
	for cursor := 0; ; cursor++ {
		rec, err := m.ClusterNext(context.Background(), id, cursor)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("ClusterNext(%s, %d): %v", id, cursor, err)
		}
		recs = append(recs, rec)
	}
	res, err := m.ClusterResult(id)
	if err != nil {
		t.Fatalf("ClusterResult(%s): %v", id, err)
	}
	return recs, res
}

// The serve-level golden test: a cluster group stepped by the manager
// pool (interleaved with an unrelated solo session) must produce a
// grant stream and member results byte-identical to driving the same
// configurations through a cluster.Coordinator directly — the service
// adds scheduling, never behavior.
func TestClusterGroupMatchesDirectCoordinator(t *testing.T) {
	req := serve.ClusterRequest{
		BudgetFrac: 0.65,
		Arbiter:    "slack",
		Members: []serve.ClusterMemberRequest{
			quickMember("ilp", "ILP1", 8, 6),
			quickMember("mem", "MEM3", 8, 6),
			quickMember("mix", "MIX2", 4, 4),
		},
	}

	// Direct run: identical sessions, identical budget resolution.
	var members []cluster.Member
	peaks := 0.0
	for _, mr := range req.Members {
		cfg, err := mr.Session.Config()
		if err != nil {
			t.Fatal(err)
		}
		ses, err := runner.NewSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		peaks += ses.PeakPowerW()
		members = append(members, cluster.Member{ID: mr.ID, Session: ses})
	}
	direct, err := cluster.New(cluster.Config{
		BudgetW: req.BudgetFrac * peaks,
		Arbiter: cluster.NewSlackReclaim(),
		Workers: 2,
	}, members)
	if err != nil {
		t.Fatal(err)
	}
	var directRecs []cluster.EpochRecord
	for {
		rec, err := direct.Step(context.Background())
		if errors.Is(err, cluster.ErrDone) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		directRecs = append(directRecs, rec)
	}
	directResults := direct.Results()

	// Served run, with a solo session sharing the pool.
	m := serve.NewManager(serve.Options{Workers: 2, MaxSessions: 8})
	defer m.Shutdown(context.Background())
	if _, err := m.Create(quickReq("MID1", 4, 6, 0.7)); err != nil {
		t.Fatal(err)
	}
	st, err := m.CreateCluster(req)
	if err != nil {
		t.Fatal(err)
	}
	if st.State.Terminal() {
		t.Fatalf("group born terminal (%s)", st.State)
	}
	if st.Arbiter != "slack" || len(st.Members) != 3 {
		t.Errorf("create status arbiter=%q members=%d, want slack/3", st.Arbiter, len(st.Members))
	}
	servedRecs, servedResults := collectCluster(t, m, st.ID)

	if got, want := mustJSON(t, servedRecs), mustJSON(t, directRecs); !bytes.Equal(got, want) {
		t.Error("served grant stream diverged from the direct coordinator run")
	}
	if got, want := mustJSON(t, servedResults), mustJSON(t, directResults); !bytes.Equal(got, want) {
		t.Error("served member results diverged from the direct coordinator run")
	}
}

// Admission control counts cluster members: a group may not push the
// resident load above MaxSessions, and deleting the group frees every
// member slot.
func TestClusterMembersCountAgainstMaxSessions(t *testing.T) {
	m := serve.NewManager(serve.Options{Workers: 1, MaxSessions: 3})
	defer m.Shutdown(context.Background())

	if _, err := m.CreateCluster(serve.ClusterRequest{
		BudgetFrac: 0.6,
		Members: []serve.ClusterMemberRequest{
			quickMember("a", "MIX3", 4, 2), quickMember("b", "MID1", 4, 2),
			quickMember("c", "MEM2", 4, 2), quickMember("d", "MIX1", 4, 2),
		},
	}); !errors.Is(err, serve.ErrTooManySessions) {
		t.Fatalf("4-member group into a 3-session manager: %v, want ErrTooManySessions", err)
	}

	st, err := m.CreateCluster(serve.ClusterRequest{
		BudgetFrac: 0.6,
		Members:    []serve.ClusterMemberRequest{quickMember("a", "MIX3", 4, 10_000), quickMember("b", "MID1", 4, 10_000)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(quickReq("MIX3", 4, 10_000, 0.6)); err != nil {
		t.Fatal(err) // third slot: fine
	}
	if _, err := m.Create(quickReq("MID2", 4, 2, 0.6)); !errors.Is(err, serve.ErrTooManySessions) {
		t.Errorf("fourth resident: %v, want ErrTooManySessions", err)
	}
	if got := m.Count(); got != 3 {
		t.Errorf("Count %d, want 3 (two members + one solo)", got)
	}
	if err := m.CloseCluster(st.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(quickReq("MID2", 4, 2, 0.6)); err != nil {
		t.Errorf("create after closing the group: %v", err)
	}
}

// The cluster-create validation table: malformed groups are refused
// typed, with no group (or member session) left resident.
func TestClusterCreateValidationTable(t *testing.T) {
	m := serve.NewManager(serve.Options{Workers: 1, MaxSessions: 8})
	defer m.Shutdown(context.Background())

	good := func() serve.ClusterRequest {
		return serve.ClusterRequest{
			BudgetW: 80,
			Members: []serve.ClusterMemberRequest{quickMember("a", "MIX3", 4, 2), quickMember("b", "MID1", 4, 2)},
		}
	}
	cases := []struct {
		name   string
		mutate func(*serve.ClusterRequest)
	}{
		{"no budget", func(r *serve.ClusterRequest) { r.BudgetW = 0 }},
		{"both budgets", func(r *serve.ClusterRequest) { r.BudgetFrac = 0.5 }},
		{"negative budget", func(r *serve.ClusterRequest) { r.BudgetW = -10 }},
		{"budget fraction above one", func(r *serve.ClusterRequest) { r.BudgetW = 0; r.BudgetFrac = 1.2 }},
		{"negative budget fraction", func(r *serve.ClusterRequest) { r.BudgetW = 0; r.BudgetFrac = -0.5 }},
		{"unknown arbiter", func(r *serve.ClusterRequest) { r.Arbiter = "chaos" }},
		{"no members", func(r *serve.ClusterRequest) { r.Members = nil }},
		{"duplicate member ids", func(r *serve.ClusterRequest) { r.Members[1].ID = "a" }},
		{"negative weight", func(r *serve.ClusterRequest) { r.Members[0].Weight = -2 }},
		{"floor above one", func(r *serve.ClusterRequest) { r.Members[0].FloorFrac = 1.4 }},
		{"recording member", func(r *serve.ClusterRequest) { r.Members[0].Session.Record = true }},
		{"unknown member mix", func(r *serve.ClusterRequest) { r.Members[0].Session.Mix = "NOPE" }},
		{"member budget out of range", func(r *serve.ClusterRequest) { r.Members[0].Session.BudgetFrac = 7 }},
		{"member cores above limit", func(r *serve.ClusterRequest) { r.Members[0].Session.Cores = 2 * serve.MaxCores }},
	}
	for _, tc := range cases {
		req := good()
		tc.mutate(&req)
		if _, err := m.CreateCluster(req); !errors.Is(err, runner.ErrInvalidConfig) {
			t.Errorf("%s: CreateCluster error %v, want ErrInvalidConfig", tc.name, err)
		}
	}
	if got := len(m.ListClusters()); got != 0 {
		t.Errorf("%d groups resident after rejected creates, want 0", got)
	}
	if got := m.Count(); got != 0 {
		t.Errorf("resident load %d after rejected creates, want 0", got)
	}
}

// Live global retargets land at the next epoch boundary; invalid watts
// and terminal groups are refused typed.
func TestClusterBudgetRetarget(t *testing.T) {
	m := serve.NewManager(serve.Options{Workers: 1, MaxSessions: 4})
	defer m.Shutdown(context.Background())

	st, err := m.CreateCluster(serve.ClusterRequest{
		BudgetW: 60,
		Members: []serve.ClusterMemberRequest{quickMember("a", "MIX3", 4, 5_000), quickMember("b", "MID1", 4, 5_000)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetClusterBudget(st.ID, -3); !errors.Is(err, runner.ErrInvalidConfig) {
		t.Errorf("negative retarget: %v, want ErrInvalidConfig", err)
	}
	if err := m.SetClusterBudget(st.ID, 45); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(30 * time.Second)
	for cursor := 0; ; cursor++ {
		select {
		case <-deadline:
			t.Fatal("no epoch picked up the retargeted global budget")
		default:
		}
		rec, err := m.ClusterNext(context.Background(), st.ID, cursor)
		if err != nil {
			t.Fatalf("stream ended before the retarget landed: %v", err)
		}
		if rec.BudgetW == 45 {
			break
		}
	}
	if err := m.CloseCluster(st.ID); err != nil {
		t.Fatal(err)
	}

	// Terminal group: retarget refused.
	done, err := m.CreateCluster(serve.ClusterRequest{
		BudgetW: 60,
		Members: []serve.ClusterMemberRequest{quickMember("a", "MIX3", 4, 2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	collectCluster(t, m, done.ID)
	if err := m.SetClusterBudget(done.ID, 50); !errors.Is(err, serve.ErrFinished) {
		t.Errorf("retarget of a done group: %v, want ErrFinished", err)
	}
}

// A group that has streamed its whole horizon is refused retargets even
// if caught before the settling turn latches it terminal — the hollow
// 200 would otherwise accept a budget with no boundary left to land on.
// (Both interleavings — settled or still queued — must answer
// ErrFinished, so the assertion is race-free.)
func TestClusterBudgetRetargetAfterLastEpoch(t *testing.T) {
	m := serve.NewManager(serve.Options{Workers: 1, MaxSessions: 4})
	defer m.Shutdown(context.Background())

	// A long solo session keeps the single worker busy between the
	// group's turns, widening the stepped-but-not-settled window. Close
	// it before the deferred drain, which would otherwise wait it out.
	solo, err := m.Create(quickReq("MID1", 4, 10_000, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(solo.ID)
	st, err := m.CreateCluster(serve.ClusterRequest{
		BudgetW: 60,
		Members: []serve.ClusterMemberRequest{quickMember("a", "MIX3", 4, 3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the final epoch's record — the horizon is fully stepped
	// the moment it exists, whether or not the group settled yet.
	if _, err := m.ClusterNext(context.Background(), st.ID, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.SetClusterBudget(st.ID, 45); !errors.Is(err, serve.ErrFinished) {
		t.Errorf("retarget after the last epoch: %v, want ErrFinished", err)
	}
}

// Attach grows a live group (and the admission load); detach removes a
// member at the next boundary while keeping its prefix result; both
// fail typed on unknown targets and terminal groups.
func TestClusterAttachDetach(t *testing.T) {
	m := serve.NewManager(serve.Options{Workers: 1, MaxSessions: 4})
	defer m.Shutdown(context.Background())

	st, err := m.CreateCluster(serve.ClusterRequest{
		BudgetW: 90,
		Members: []serve.ClusterMemberRequest{quickMember("a", "MIX3", 4, 40), quickMember("b", "MID1", 4, 40)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AttachMember(st.ID, serve.ClusterMemberRequest{Session: quickReq("MEM2", 4, 30, 0.6)}); !errors.Is(err, runner.ErrInvalidConfig) {
		t.Errorf("attach without id: %v, want ErrInvalidConfig", err)
	}
	at, err := m.AttachMember(st.ID, quickMember("late", "MEM2", 4, 30))
	if err != nil {
		t.Fatal(err)
	}
	if len(at.Members) != 3 {
		t.Errorf("status after attach lists %d members, want 3", len(at.Members))
	}
	if _, err := m.AttachMember(st.ID, quickMember("late", "MEM2", 4, 30)); !errors.Is(err, runner.ErrInvalidConfig) {
		t.Errorf("duplicate attach: %v, want ErrInvalidConfig", err)
	}
	if got := m.Count(); got != 3 {
		t.Errorf("Count %d after attach, want 3", got)
	}
	// The attached member joins the stream at the next boundary.
	deadline := time.After(30 * time.Second)
	for cursor := 0; ; cursor++ {
		select {
		case <-deadline:
			t.Fatal("attached member never appeared in the stream")
		default:
		}
		rec, err := m.ClusterNext(context.Background(), st.ID, cursor)
		if err != nil {
			t.Fatalf("stream ended before the attach landed: %v", err)
		}
		found := false
		for _, mg := range rec.Members {
			if mg.ID == "late" {
				found = true
			}
		}
		if found {
			break
		}
	}
	if err := m.DetachMember(st.ID, "nope"); !errors.Is(err, serve.ErrNotFound) {
		t.Errorf("detach unknown member: %v, want ErrNotFound", err)
	}
	if err := m.DetachMember(st.ID, "b"); err != nil {
		t.Fatal(err)
	}
	// b leaves the stream at the next boundary.
	deadline = time.After(30 * time.Second)
	for cursor := 0; ; cursor++ {
		select {
		case <-deadline:
			t.Fatal("detached member never left the stream")
		default:
		}
		rec, err := m.ClusterNext(context.Background(), st.ID, cursor)
		if err != nil {
			t.Fatalf("stream ended before the detach landed: %v", err)
		}
		found := false
		for _, mg := range rec.Members {
			if mg.ID == "b" {
				found = true
			}
		}
		if !found {
			break
		}
	}
	if err := m.CloseCluster(st.ID); err != nil {
		t.Fatal(err)
	}
}

// Shutdown drains groups: naturally with a live context, by epoch-
// boundary cancellation when the deadline expires; prefix results
// survive either way.
func TestClusterShutdownDrain(t *testing.T) {
	m := serve.NewManager(serve.Options{Workers: 2, MaxSessions: 4})
	st, err := m.CreateCluster(serve.ClusterRequest{
		BudgetW: 60,
		Members: []serve.ClusterMemberRequest{quickMember("a", "MIX3", 4, 3), quickMember("b", "MID1", 4, 3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatalf("natural drain returned %v", err)
	}
	got, err := m.ClusterStatus(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != serve.StateDone || got.EpochsDone != 3 {
		t.Errorf("drained group state %s after %d epochs, want done after 3", got.State, got.EpochsDone)
	}
	if _, err := m.CreateCluster(serve.ClusterRequest{
		BudgetW: 60, Members: []serve.ClusterMemberRequest{quickMember("a", "MIX3", 4, 2)},
	}); !errors.Is(err, serve.ErrDraining) {
		t.Errorf("create after shutdown: %v, want ErrDraining", err)
	}

	m2 := serve.NewManager(serve.Options{Workers: 1, MaxSessions: 4})
	st2, err := m2.CreateCluster(serve.ClusterRequest{
		BudgetW: 60,
		Members: []serve.ClusterMemberRequest{quickMember("a", "MIX3", 4, serve.MaxEpochs)},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m2.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain returned %v, want DeadlineExceeded", err)
	}
	got2, err := m2.ClusterStatus(st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got2.State != serve.StateCanceled {
		t.Errorf("straggler group state %s, want canceled", got2.State)
	}
	if _, err := m2.ClusterResult(st2.ID); err != nil {
		t.Errorf("prefix results unavailable after forced drain: %v", err)
	}
}

// Unknown group ids fail typed on every manager surface.
func TestClusterUnknownIDTypedErrors(t *testing.T) {
	m := serve.NewManager(serve.Options{Workers: 1})
	defer m.Shutdown(context.Background())

	if _, err := m.ClusterStatus("nope"); !errors.Is(err, serve.ErrNotFound) {
		t.Errorf("ClusterStatus: %v", err)
	}
	if _, err := m.ClusterNext(context.Background(), "nope", 0); !errors.Is(err, serve.ErrNotFound) {
		t.Errorf("ClusterNext: %v", err)
	}
	if _, err := m.ClusterResult("nope"); !errors.Is(err, serve.ErrNotFound) {
		t.Errorf("ClusterResult: %v", err)
	}
	if err := m.SetClusterBudget("nope", 50); !errors.Is(err, serve.ErrNotFound) {
		t.Errorf("SetClusterBudget: %v", err)
	}
	if _, err := m.AttachMember("nope", quickMember("x", "MIX3", 4, 2)); !errors.Is(err, serve.ErrNotFound) {
		t.Errorf("AttachMember: %v", err)
	}
	if err := m.DetachMember("nope", "x"); !errors.Is(err, serve.ErrNotFound) {
		t.Errorf("DetachMember: %v", err)
	}
	if err := m.CloseCluster("nope"); !errors.Is(err, serve.ErrNotFound) {
		t.Errorf("CloseCluster: %v", err)
	}
	// A live group refuses results typed, and a negative cursor is a
	// config error.
	st, err := m.CreateCluster(serve.ClusterRequest{
		BudgetW: 60, Members: []serve.ClusterMemberRequest{quickMember("a", "MIX3", 4, 10_000)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ClusterResult(st.ID); !errors.Is(err, serve.ErrNotFinished) {
		t.Errorf("live result: %v, want ErrNotFinished", err)
	}
	if _, err := m.ClusterNext(context.Background(), st.ID, -1); !errors.Is(err, runner.ErrInvalidConfig) {
		t.Errorf("negative cursor: %v, want ErrInvalidConfig", err)
	}
	if err := m.CloseCluster(st.ID); err != nil {
		t.Fatal(err)
	}
}

// The HTTP surface end to end: create, status, stream, retarget,
// attach, detach, result, delete — with typed errors mapped to status
// codes.
func TestClusterHTTPEndToEnd(t *testing.T) {
	m := serve.NewManager(serve.Options{Workers: 2, MaxSessions: 6})
	defer m.Shutdown(context.Background())
	srv := httptest.NewServer(serve.NewHandler(m))
	defer srv.Close()

	post := func(path, body string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(b)
	}
	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(b)
	}
	del := func(path string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodDelete, srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// Malformed creates map to 4xx.
	for name, tc := range map[string]struct {
		body string
		code int
	}{
		"no budget":      {`{"members":[{"session":{"mix":"MIX3","budget_frac":0.6}}]}`, http.StatusBadRequest},
		"bad arbiter":    {`{"budget_w":50,"arbiter":"chaos","members":[{"session":{"mix":"MIX3","budget_frac":0.6}}]}`, http.StatusBadRequest},
		"duplicate ids":  {`{"budget_w":50,"members":[{"id":"a","session":{"mix":"MIX3","budget_frac":0.6}},{"id":"a","session":{"mix":"MID1","budget_frac":0.6}}]}`, http.StatusBadRequest},
		"unknown field":  {`{"budget_w":50,"surprise":1,"members":[{"session":{"mix":"MIX3","budget_frac":0.6}}]}`, http.StatusBadRequest},
		"not even json":  {`{"budget_w":`, http.StatusBadRequest},
		"too many":       {`{"budget_w":50,"members":[{"session":{"mix":"MIX3","budget_frac":0.6}},{"session":{"mix":"MIX3","budget_frac":0.6}},{"session":{"mix":"MIX3","budget_frac":0.6}},{"session":{"mix":"MIX3","budget_frac":0.6}},{"session":{"mix":"MIX3","budget_frac":0.6}},{"session":{"mix":"MIX3","budget_frac":0.6}},{"session":{"mix":"MIX3","budget_frac":0.6}}]}`, http.StatusTooManyRequests},
		"member rejects": {`{"budget_w":50,"members":[{"session":{"mix":"MIX3","budget_frac":0.6,"cores":-4}}]}`, http.StatusBadRequest},
	} {
		resp, body := post("/clusters", tc.body)
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d (%s), want %d", name, resp.StatusCode, body, tc.code)
		}
	}

	// A good create.
	resp, body := post("/clusters", `{"budget_frac":0.6,"arbiter":"slack","members":[
		{"id":"ilp","session":{"mix":"ILP1","budget_frac":0.6,"cores":4,"epochs":6,"epoch_ms":0.5}},
		{"id":"mem","session":{"mix":"MEM2","budget_frac":0.6,"cores":4,"epochs":4,"epoch_ms":0.5}}]}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d (%s)", resp.StatusCode, body)
	}
	var st serve.ClusterStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if loc := resp.Header.Get("Location"); loc != "/clusters/"+st.ID {
		t.Errorf("Location %q, want /clusters/%s", loc, st.ID)
	}

	if resp, _ := post("/clusters/nope/budget", `{"budget_w":40}`); resp.StatusCode != http.StatusNotFound {
		t.Errorf("retarget unknown: %d", resp.StatusCode)
	}

	// Stream to the end: every line parses as a cluster record; the
	// stream is 6 epochs (the longest member).
	resp, body = get("/clusters/" + st.ID + "/stream")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: %d", resp.StatusCode)
	}
	var lines []string
	for _, ln := range strings.Split(strings.TrimSpace(body), "\n") {
		if isHeartbeatLine([]byte(ln)) {
			continue // keepalives are not epoch records
		}
		lines = append(lines, ln)
	}
	if len(lines) != 6 {
		t.Errorf("stream has %d lines, want 6", len(lines))
	}
	for i, ln := range lines {
		var rec cluster.EpochRecord
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("stream line %d: %v", i, err)
		}
		if rec.Epoch != i {
			t.Errorf("stream line %d has epoch %d", i, rec.Epoch)
		}
	}
	if resp, _ := get("/clusters/" + st.ID + "/stream?from=-1"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative from: %d", resp.StatusCode)
	}

	// Terminal: result serves per-member aggregates; late retarget 409;
	// attach 409.
	resp, body = get("/clusters/" + st.ID + "/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d (%s)", resp.StatusCode, body)
	}
	var results []cluster.MemberResult
	if err := json.Unmarshal([]byte(body), &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].ID != "ilp" || len(results[0].Result.Epochs) != 6 {
		t.Errorf("unexpected results shape: %d members", len(results))
	}
	if resp, _ := post("/clusters/"+st.ID+"/budget", `{"budget_w":40}`); resp.StatusCode != http.StatusConflict {
		t.Errorf("terminal retarget: %d, want 409", resp.StatusCode)
	}
	if resp, _ := post("/clusters/"+st.ID+"/members", `{"id":"x","session":{"mix":"MIX3","budget_frac":0.6}}`); resp.StatusCode != http.StatusConflict {
		t.Errorf("terminal attach: %d, want 409", resp.StatusCode)
	}
	if resp := del("/clusters/" + st.ID + "/members/ilp"); resp.StatusCode != http.StatusConflict {
		t.Errorf("terminal detach: %d, want 409", resp.StatusCode)
	}

	// Delete; everything 404s afterwards.
	if resp := del("/clusters/" + st.ID); resp.StatusCode != http.StatusNoContent {
		t.Errorf("delete: %d", resp.StatusCode)
	}
	if resp, _ := get("/clusters/" + st.ID); resp.StatusCode != http.StatusNotFound {
		t.Errorf("status after delete: %d", resp.StatusCode)
	}
	if resp := del("/clusters/" + st.ID); resp.StatusCode != http.StatusNotFound {
		t.Errorf("double delete: %d", resp.StatusCode)
	}

	// Attach/detach on a live group over HTTP.
	resp, body = post("/clusters", `{"budget_w":80,"members":[
		{"id":"a","session":{"mix":"MIX3","budget_frac":0.6,"cores":4,"epochs":2000,"epoch_ms":0.5}}]}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("second create: %d (%s)", resp.StatusCode, body)
	}
	var st2 serve.ClusterStatus
	if err := json.Unmarshal([]byte(body), &st2); err != nil {
		t.Fatal(err)
	}
	// Retargets against the long-lived group: bad body 400, good 200.
	if resp, _ := post("/clusters/"+st2.ID+"/budget", `{"budget_w":-4}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad retarget: %d", resp.StatusCode)
	}
	if resp, _ := post("/clusters/"+st2.ID+"/budget", `{"budget_w":40}`); resp.StatusCode != http.StatusOK {
		t.Errorf("good retarget: %d", resp.StatusCode)
	}
	if resp, body := post("/clusters/"+st2.ID+"/members", `{"id":"late","session":{"mix":"MEM2","budget_frac":0.6,"cores":4,"epochs":2000,"epoch_ms":0.5}}`); resp.StatusCode != http.StatusOK {
		t.Errorf("attach: %d (%s)", resp.StatusCode, body)
	}
	if resp, _ := post("/clusters/"+st2.ID+"/members", `{"id":"late","session":{"mix":"MEM2","budget_frac":0.6}}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("duplicate attach: %d, want 400", resp.StatusCode)
	}
	if resp := del("/clusters/" + st2.ID + "/members/nope"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("detach unknown: %d, want 404", resp.StatusCode)
	}
	if resp := del("/clusters/" + st2.ID + "/members/a"); resp.StatusCode != http.StatusNoContent {
		t.Errorf("detach: %d, want 204", resp.StatusCode)
	}
	if resp := del("/clusters/" + st2.ID); resp.StatusCode != http.StatusNoContent {
		t.Errorf("cleanup delete: %d", resp.StatusCode)
	}

	// The list endpoint names live groups.
	resp, body = get("/clusters")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("list: %d", resp.StatusCode)
	}
	var list []serve.ClusterStatus
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 0 {
		t.Errorf("%d groups listed after deletes, want 0", len(list))
	}
}
