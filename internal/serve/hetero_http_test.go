package serve_test

import (
	"bytes"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/serve"
)

// quickMachineReq is quickReq on a 2+2 big.LITTLE machine.
func quickMachineReq(mix string, epochs int) serve.Request {
	req := quickReq(mix, 4, epochs, 0.6)
	req.Machine = &serve.MachineRequest{
		Name: "bigLITTLE-2+2",
		Classes: []serve.ClassRequest{
			{Name: "big", Count: 2},
			{Name: "little", Count: 2, Ladder: "efficiency", DynMaxW: 1.5, StaticW: 0.2, GateFrac: 0.12, ExecCPIScale: 1.25},
		},
	}
	return req
}

// Stream cursor edge cases: a negative or malformed ?from is a 400
// before any NDJSON is committed, and a cursor past the end of a
// finished session's stream terminates immediately with an empty body
// instead of hanging.
func TestHTTPStreamCursorEdgeCases(t *testing.T) {
	srv, m := newServer(t, serve.Options{Workers: 1})
	st := decodeStatus(t, doJSON(t, "POST", srv.URL+"/sessions", quickReq("MIX3", 4, 3, 0.6)))

	// Let the session finish so past-end cursors exercise the terminal
	// path, not the live-wait path.
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, err := m.Status(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session never finished: %+v", cur)
		}
		time.Sleep(5 * time.Millisecond)
	}

	for _, tc := range []struct {
		name string
		from string
		code int
	}{
		{"negative cursor", "-1", http.StatusBadRequest},
		{"very negative cursor", "-9999999999999999999", http.StatusBadRequest},
		{"malformed cursor", "three", http.StatusBadRequest},
		{"float cursor", "1.5", http.StatusBadRequest},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp := doJSON(t, "GET", srv.URL+"/sessions/"+st.ID+"/stream?from="+tc.from, nil)
			defer resp.Body.Close()
			if resp.StatusCode != tc.code {
				t.Errorf("from=%s status %d, want %d", tc.from, resp.StatusCode, tc.code)
			}
		})
	}

	// Past end-of-stream on the finished session: clean, prompt, empty.
	for _, from := range []string{"3", "100", "9223372036854775807"} {
		done := make(chan struct{})
		go func() {
			defer close(done)
			resp := doJSON(t, "GET", srv.URL+"/sessions/"+st.ID+"/stream?from="+from, nil)
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("from=%s status %d, want 200", from, resp.StatusCode)
			}
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Errorf("from=%s read: %v", from, err)
			}
			if len(body) != 0 {
				t.Errorf("from=%s yielded %d bytes past end of stream", from, len(body))
			}
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("stream from=%s past end of finished session hung", from)
		}
	}
}

// A heterogeneous machine session over HTTP streams byte-identically
// to the solo runner.Run of the same request.
func TestHTTPMachineSessionGolden(t *testing.T) {
	srv, _ := newServer(t, serve.Options{Workers: 2})
	req := quickMachineReq("MIX3", 4)
	solo := soloRun(t, req)

	resp := doJSON(t, "POST", srv.URL+"/sessions", req)
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("create status %d: %s", resp.StatusCode, body)
	}
	st := decodeStatus(t, resp)

	stream := doJSON(t, "GET", srv.URL+"/sessions/"+st.ID+"/stream", nil)
	defer stream.Body.Close()
	body, err := io.ReadAll(stream.Body)
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for _, e := range solo.Epochs {
		want = append(want, mustJSON(t, e)...)
		want = append(want, '\n')
	}
	if !bytes.Equal(body, want) {
		t.Errorf("machine session stream diverged from solo run:\nserved: %s\nsolo:   %s", body, want)
	}
}

// A full-placement machine needs no Table III mix; the status labels
// the session with the machine name.
func TestHTTPMachinePlacementWithoutMix(t *testing.T) {
	srv, _ := newServer(t, serve.Options{Workers: 1})
	req := serve.Request{
		Policy:     "FastCap",
		BudgetFrac: 0.6,
		Cores:      4,
		Epochs:     2,
		EpochMs:    0.5,
		Machine: &serve.MachineRequest{
			Name: "pinned",
			Classes: []serve.ClassRequest{
				{Name: "big", Count: 2, Apps: []string{"swim", "crafty"}},
				{Name: "little", Count: 2, Ladder: "efficiency", Apps: []string{"ammp"}},
			},
		},
	}
	resp := doJSON(t, "POST", srv.URL+"/sessions", req)
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("create status %d: %s", resp.StatusCode, body)
	}
	st := decodeStatus(t, resp)
	if st.Mix != "pinned" {
		t.Errorf("placement session mix label %q, want machine name", st.Mix)
	}
}

// A class that overrides only dyn_max_w inherits the default leakage
// and gating fields instead of running with literal zeros — otherwise
// the machine's peak (and thus every watts budget) silently deflates.
func TestHTTPMachinePartialPowerInherits(t *testing.T) {
	partial := quickReq("MIX3", 4, 2, 0.6)
	partial.Machine = &serve.MachineRequest{Classes: []serve.ClassRequest{
		{Name: "all", Count: 4, DynMaxW: 4.2},
	}}
	full := quickReq("MIX3", 4, 2, 0.6)
	full.Machine = &serve.MachineRequest{Classes: []serve.ClassRequest{
		{Name: "all", Count: 4, DynMaxW: 4.2, StaticW: 0.5, GateFrac: 0.15},
	}}
	pc, err := partial.Config()
	if err != nil {
		t.Fatal(err)
	}
	fc, err := full.Config()
	if err != nil {
		t.Fatal(err)
	}
	got := pc.Sim.Machine.Classes[0].Power
	want := fc.Sim.Machine.Classes[0].Power
	if got != want {
		t.Errorf("partial power spec resolved to %+v, want defaults filled in: %+v", got, want)
	}
}

// Machine request validation: every malformed spec is a 400 with no
// session left behind.
func TestHTTPMachineValidation(t *testing.T) {
	srv, m := newServer(t, serve.Options{Workers: 1})
	base := func() serve.Request { return quickMachineReq("MIX3", 2) }

	cases := []struct {
		name   string
		mutate func(*serve.Request)
	}{
		{"counts do not sum to cores", func(r *serve.Request) { r.Machine.Classes[0].Count = 3 }},
		{"zero-count class", func(r *serve.Request) { r.Machine.Classes[0].Count = 0; r.Machine.Classes[1].Count = 4 }},
		{"no classes", func(r *serve.Request) { r.Machine.Classes = nil }},
		{"unknown ladder preset", func(r *serve.Request) { r.Machine.Classes[1].Ladder = "quantum" }},
		{"preset and explicit ladder", func(r *serve.Request) {
			r.Machine.Classes[1].LadderSteps = 4
			r.Machine.Classes[1].FMinGHz, r.Machine.Classes[1].FMaxGHz = 1, 2
			r.Machine.Classes[1].VMinV, r.Machine.Classes[1].VMaxV = 0.6, 1
		}},
		{"explicit ladder above step limit", func(r *serve.Request) {
			r.Machine.Classes[1].Ladder = ""
			r.Machine.Classes[1].LadderSteps = serve.MaxLadderSteps + 1
		}},
		{"explicit ladder with bad range", func(r *serve.Request) {
			r.Machine.Classes[1].Ladder = ""
			r.Machine.Classes[1].LadderSteps = 4
			r.Machine.Classes[1].FMinGHz, r.Machine.Classes[1].FMaxGHz = 2, 1
			r.Machine.Classes[1].VMinV, r.Machine.Classes[1].VMaxV = 0.6, 1
		}},
		{"duplicate class names", func(r *serve.Request) { r.Machine.Classes[1].Name = "big" }},
		{"unnamed class", func(r *serve.Request) { r.Machine.Classes[0].Name = "" }},
		{"negative CPI scale", func(r *serve.Request) { r.Machine.Classes[1].ExecCPIScale = -1 }},
		{"partial placement", func(r *serve.Request) { r.Machine.Classes[0].Apps = []string{"swim"} }},
		{"placement not dividing count", func(r *serve.Request) {
			r.Machine.Classes[0].Apps = []string{"swim"}
			r.Machine.Classes[1].Apps = []string{"ammp", "gap", "vpr"}
		}},
		{"unknown placed app", func(r *serve.Request) {
			r.Machine.Classes[0].Apps = []string{"doom"}
			r.Machine.Classes[1].Apps = []string{"ammp"}
		}},
		{"no mix and no placement", func(r *serve.Request) { r.Mix = "" }},
		{"too many classes", func(r *serve.Request) {
			r.Cores = 4 * (serve.MaxCoreClasses + 1)
			var cls []serve.ClassRequest
			for i := 0; i < serve.MaxCoreClasses+1; i++ {
				cls = append(cls, serve.ClassRequest{Name: string(rune('a' + i)), Count: 4})
			}
			r.Machine.Classes = cls
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := base()
			tc.mutate(&req)
			resp := doJSON(t, "POST", srv.URL+"/sessions", req)
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status %d, want 400 (%s)", resp.StatusCode, body)
			}
		})
	}
	if n := m.Count(); n != 0 {
		t.Errorf("%d sessions resident after rejected creates, want 0", n)
	}
}
