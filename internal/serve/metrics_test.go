package serve_test

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/serve"
)

// newInstrumentedServer boots the HTTP stack with a metrics registry
// mounted at /metrics, exactly as cmd/fastcapd wires it.
func newInstrumentedServer(t *testing.T, o serve.Options) (*httptest.Server, *serve.Manager) {
	t.Helper()
	reg := metrics.NewRegistry()
	o.Metrics = serve.NewMetrics(reg)
	m := serve.NewManager(o)
	mux := http.NewServeMux()
	mux.Handle("/", serve.NewHandler(m))
	mux.Handle("GET /metrics", reg.Handler())
	srv := httptest.NewServer(mux)
	t.Cleanup(func() {
		srv.Close()
		m.Shutdown(context.Background())
	})
	return srv, m
}

// scrape fetches /metrics and returns the exposition text.
func scrape(t *testing.T, srv *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// metricValue extracts one series' value from exposition text; -1 when
// the series is absent.
func metricValue(text, series string) float64 {
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				return -1
			}
			return v
		}
	}
	return -1
}

// TestMetricsLifecycleCounters drives full session and cluster-group
// lifecycles and checks the daemon's ledger agrees with what happened:
// creations, retargets, epoch counters, and stream terminations
// classified as clean completions.
func TestMetricsLifecycleCounters(t *testing.T) {
	srv, _ := newInstrumentedServer(t, serve.Options{Workers: 2})

	// Two sessions, streamed to EOF; one retargeted.
	var ids []string
	for i := 0; i < 2; i++ {
		resp := doJSON(t, "POST", srv.URL+"/sessions", quickReq("MIX3", 4, 40, 0.6))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create status %d", resp.StatusCode)
		}
		ids = append(ids, decodeStatus(t, resp).ID)
	}
	resp := doJSON(t, "POST", srv.URL+"/sessions/"+ids[0]+"/budget", map[string]float64{"budget_frac": 0.5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retarget status %d", resp.StatusCode)
	}
	resp.Body.Close()
	for _, id := range ids {
		stream := doJSON(t, "GET", srv.URL+"/sessions/"+id+"/stream", nil)
		lines := 0
		sc := bufio.NewScanner(stream.Body)
		for sc.Scan() {
			if !strings.Contains(sc.Text(), `"heartbeat"`) {
				lines++
			}
		}
		stream.Body.Close()
		if lines != 40 {
			t.Fatalf("session %s streamed %d epochs, want 40", id, lines)
		}
	}

	// One cluster group, streamed to EOF, retargeted.
	creq := map[string]any{
		"budget_frac": 0.7,
		"members": []any{
			map[string]any{"session": quickReq("MIX1", 4, 6, 0.7)},
			map[string]any{"session": quickReq("MEM2", 4, 6, 0.7)},
		},
	}
	resp = doJSON(t, "POST", srv.URL+"/clusters", creq)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("cluster create status %d", resp.StatusCode)
	}
	var cst serve.ClusterStatus
	decodeInto(t, resp, &cst)
	resp = doJSON(t, "POST", srv.URL+"/clusters/"+cst.ID+"/budget", map[string]float64{"budget_w": cst.BudgetW * 0.8})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster retarget status %d", resp.StatusCode)
	}
	resp.Body.Close()
	stream := doJSON(t, "GET", srv.URL+"/clusters/"+cst.ID+"/stream", nil)
	clines := 0
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		if !strings.Contains(sc.Text(), `"heartbeat"`) {
			clines++
		}
	}
	stream.Body.Close()
	if clines == 0 {
		t.Fatal("cluster stream produced no epoch records")
	}

	text := scrape(t, srv)
	for series, want := range map[string]float64{
		"fastcap_serve_sessions_created_total":            2,
		"fastcap_serve_cluster_groups_created_total":      1,
		`fastcap_serve_retargets_total{target="session"}`: 1,
		`fastcap_serve_retargets_total{target="cluster"}`: 1,
		// Solo sessions only: cluster members step inside their group's
		// coordinator epoch, counted by cluster_epochs_total instead.
		"fastcap_serve_session_epochs_total":                           2 * 40,
		"fastcap_serve_cluster_epochs_total":                           float64(clines),
		`fastcap_serve_stream_terminations_total{cause="completed"}`:   3,
		`fastcap_serve_stream_terminations_total{cause="client_gone"}`: 0,
	} {
		if got := metricValue(text, series); got != want {
			t.Errorf("%s = %v, want %v", series, got, want)
		}
	}
	if got := metricValue(text, "fastcap_serve_epoch_step_seconds_count"); got < 80 {
		t.Errorf("step histogram count %v, want >= 80", got)
	}
	// The group is still resident, so its labeled gauges are scraped.
	if got := metricValue(text, `fastcap_cluster_members{cluster="`+cst.ID+`"}`); got != 2 {
		t.Errorf("cluster members gauge %v, want 2", got)
	}

	// Deleting the group retires its labeled series from the scrape.
	resp = doJSON(t, "DELETE", srv.URL+"/clusters/"+cst.ID, nil)
	resp.Body.Close()
	text = scrape(t, srv)
	if got := metricValue(text, `fastcap_cluster_members{cluster="`+cst.ID+`"}`); got != -1 {
		t.Errorf("deleted cluster still scraped: members gauge %v", got)
	}
}

// TestMetricsHeartbeatAndHangup pins the stream-termination taxonomy:
// idle-stream keepalives count as heartbeats, and a client hanging up
// mid-stream counts as client_gone, not completed.
func TestMetricsHeartbeatAndHangup(t *testing.T) {
	srv, _ := newInstrumentedServer(t, serve.Options{
		Workers: 1, StreamHeartbeat: time.Millisecond,
	})

	// A long session: its stream interleaves epoch records with 1 ms
	// keepalives whenever the scheduler is busy elsewhere.
	resp := doJSON(t, "POST", srv.URL+"/sessions", quickReq("MIX3", 4, 4000, 0.6))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	id := decodeStatus(t, resp).ID

	stream := doJSON(t, "GET", srv.URL+"/sessions/"+id+"/stream", nil)
	sc := bufio.NewScanner(stream.Body)
	heartbeats := 0
	for deadline := time.Now().Add(10 * time.Second); heartbeats < 2 && time.Now().Before(deadline) && sc.Scan(); {
		if strings.Contains(sc.Text(), `"heartbeat"`) {
			heartbeats++
		}
	}
	if heartbeats < 2 {
		t.Fatal("stream produced no heartbeat lines")
	}
	stream.Body.Close() // hang up mid-run

	// The handler notices the hangup at its next write; poll the ledger.
	var text string
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); time.Sleep(20 * time.Millisecond) {
		text = scrape(t, srv)
		if metricValue(text, `fastcap_serve_stream_terminations_total{cause="client_gone"}`) >= 1 {
			break
		}
	}
	if got := metricValue(text, `fastcap_serve_stream_terminations_total{cause="client_gone"}`); got < 1 {
		t.Errorf("client hangup not counted: client_gone = %v", got)
	}
	if got := metricValue(text, "fastcap_serve_stream_heartbeats_total"); got < 2 {
		t.Errorf("heartbeats counted %v, want >= 2", got)
	}
	if got := metricValue(text, `fastcap_serve_stream_terminations_total{cause="completed"}`); got != 0 {
		t.Errorf("hangup misclassified as completed (%v)", got)
	}

	resp = doJSON(t, "DELETE", srv.URL+"/sessions/"+id, nil)
	resp.Body.Close()
}

// TestReadyzDrain pins the readiness contract: 200 while accepting,
// 503 from the moment a drain starts, and forever after.
func TestReadyzDrain(t *testing.T) {
	srv, m := newInstrumentedServer(t, serve.Options{Workers: 1})

	resp := doJSON(t, "GET", srv.URL+"/readyz", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz while accepting: %d, want 200", resp.StatusCode)
	}

	// A long session keeps the drain open while we probe readiness.
	cr := doJSON(t, "POST", srv.URL+"/sessions", quickReq("MIX3", 4, 4000, 0.6))
	cr.Body.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- m.Shutdown(ctx) }()

	ready := -1
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); time.Sleep(10 * time.Millisecond) {
		resp := doJSON(t, "GET", srv.URL+"/readyz", nil)
		resp.Body.Close()
		ready = resp.StatusCode
		if ready == http.StatusServiceUnavailable {
			break
		}
	}
	if ready != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain: %d, want 503", ready)
	}
	cancel() // cut the drain rather than waiting 4000 epochs
	<-done

	resp = doJSON(t, "GET", srv.URL+"/readyz", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz after shutdown: %d, want 503", resp.StatusCode)
	}
	text := scrape(t, srv)
	if got := metricValue(text, `fastcap_serve_drains_total{outcome="cut"}`); got != 1 {
		t.Errorf("cut drain not counted: %v, want 1", got)
	}
}

// TestMetricsConcurrentScrape hammers /metrics while 8 sessions and a
// stepping cluster group are live — the race detector's view of the
// scrape path (gauge funcs take manager locks mid-WriteText).
func TestMetricsConcurrentScrape(t *testing.T) {
	srv, _ := newInstrumentedServer(t, serve.Options{Workers: 4})

	for i := 0; i < 8; i++ {
		resp := doJSON(t, "POST", srv.URL+"/sessions", quickReq("MIX3", 4, 20, 0.6))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	creq := map[string]any{
		"budget_frac": 0.7,
		"members": []any{
			map[string]any{"session": quickReq("MIX1", 4, 20, 0.7)},
			map[string]any{"session": quickReq("MEM2", 4, 20, 0.7)},
		},
	}
	resp := doJSON(t, "POST", srv.URL+"/clusters", creq)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("cluster create status %d", resp.StatusCode)
	}
	var cst serve.ClusterStatus
	decodeInto(t, resp, &cst)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					scrape(t, srv)
				}
			}
		}()
	}

	// Let scrapes overlap live stepping, then drain the group's stream
	// to its end so the teardown below isn't racing the run.
	stream := doJSON(t, "GET", srv.URL+"/clusters/"+cst.ID+"/stream", nil)
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
	}
	stream.Body.Close()
	close(stop)
	wg.Wait()

	text := scrape(t, srv)
	if got := metricValue(text, "fastcap_serve_sessions_created_total"); got != 8 {
		t.Errorf("sessions created %v, want 8", got)
	}
	if got := metricValue(text, "fastcap_serve_cluster_epochs_total"); got < 20 {
		t.Errorf("cluster epochs %v, want >= 20", got)
	}
}

// decodeInto decodes a JSON response body.
func decodeInto(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
