package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/cluster"
	"repro/internal/runner"
)

// ClusterRequest describes one cluster group to create — the JSON body
// of POST /clusters. A group owns its member sessions: they are created
// with it, stepped in epoch lockstep by the cluster coordinator, and
// count against the manager's MaxSessions admission budget.
//
// Exactly one of BudgetW and BudgetFrac sets the global budget.
type ClusterRequest struct {
	// BudgetW is the global power budget in watts, arbitrated across
	// members each epoch.
	BudgetW float64 `json:"budget_w,omitempty"`
	// BudgetFrac sets the budget as a fraction in (0, 1] of the sum of
	// member machine peaks — convenient when the caller does not know
	// the peaks up front.
	BudgetFrac float64 `json:"budget_frac,omitempty"`
	// Arbiter picks the arbitration policy: "static" (proportional to
	// peak, the default), "slack" (slack-reclaiming with hysteresis),
	// "priority" (proportional to weight × peak), "slo"
	// (throughput-contract driven; see ClusterMemberRequest.TargetBIPS)
	// or "predictive" (forecast-driven pre-allocation). The
	// authoritative list is cluster.ArbiterNames.
	Arbiter string `json:"arbiter,omitempty"`
	// Members are the group's tenants, in arbitration order.
	Members []ClusterMemberRequest `json:"members"`
}

// ClusterMemberRequest is one member of a cluster-create (or a member
// attach, POST /clusters/{id}/members).
type ClusterMemberRequest struct {
	// ID names the member in grant streams. Defaults to "m1", "m2", …
	// by position; must be unique within the group.
	ID string `json:"id,omitempty"`
	// Weight is the priority-weighted arbiter's share multiplier.
	// Defaults to 1.
	Weight float64 `json:"weight,omitempty"`
	// FloorFrac is the member's guaranteed minimum grant as a fraction
	// of its machine peak. Defaults to cluster.DefaultFloorFrac.
	FloorFrac float64 `json:"floor_frac,omitempty"`
	// TargetBIPS declares an optional throughput SLO in
	// giga-instructions per second. Contracted members report bips and
	// slo_violated in their grant lines, surface slo_violated/
	// slo_restored events in the stream, and steer the "slo" arbiter.
	// 0 (the default) means no contract.
	TargetBIPS float64 `json:"target_bips,omitempty"`
	// Session configures the member's capping run — the same payload as
	// POST /sessions, except Record (members are not individually
	// addressable, so a recording would be unreachable).
	Session Request `json:"session"`
}

// resolvedMember is one validated member: its session configuration
// plus arbitration parameters, ready to build.
type resolvedMember struct {
	id     string
	weight float64
	floor  float64
	target float64
	cfg    runner.Config
}

// resolveMember validates one member request. idx positions the member
// for the default id; seen carries already-claimed ids.
func resolveMember(req ClusterMemberRequest, idx int, seen map[string]bool) (resolvedMember, error) {
	rm := resolvedMember{id: req.ID}
	if rm.id == "" {
		rm.id = "m" + strconv.Itoa(idx+1)
	}
	if seen[rm.id] {
		return rm, fmt.Errorf("%w: duplicate cluster member id %q", runner.ErrInvalidConfig, rm.id)
	}
	// Parameter normalization and bounds live in the cluster layer — one
	// source of truth, so a rejected request here is exactly what the
	// Coordinator would have refused.
	p, err := cluster.MemberParams{Weight: req.Weight, FloorFrac: req.FloorFrac, TargetBIPS: req.TargetBIPS}.Normalize(rm.id)
	if err != nil {
		return rm, err
	}
	rm.weight, rm.floor, rm.target = p.Weight, p.FloorFrac, p.TargetBIPS
	if req.Session.Record {
		return rm, fmt.Errorf("%w: member %q requests a recording; cluster members cannot record", runner.ErrInvalidConfig, rm.id)
	}
	cfg, err := req.Session.Config()
	if err != nil {
		return rm, fmt.Errorf("member %q: %w", rm.id, err)
	}
	rm.cfg = cfg
	seen[rm.id] = true
	return rm, nil
}

// resolvedCluster is a fully validated cluster request, before any
// simulator is built.
type resolvedCluster struct {
	budgetW    float64 // 0 when budgetFrac drives
	budgetFrac float64
	arb        cluster.Arbiter
	members    []resolvedMember
}

// resolve validates the whole request against the serving bounds. It is
// pure — no simulator construction — so the fuzzer drives it directly:
// every malformed request must yield a typed error (runner.
// ErrInvalidConfig or ErrTooManySessions), never a panic.
func (r ClusterRequest) resolve(maxMembers int) (resolvedCluster, error) {
	var rc resolvedCluster
	switch {
	case r.BudgetW != 0 && r.BudgetFrac != 0:
		return rc, fmt.Errorf("%w: set budget_w or budget_frac, not both", runner.ErrInvalidConfig)
	case r.BudgetW != 0:
		// The watt bounds live in the cluster layer (one source of truth,
		// like MemberParams); budget_frac is a serve-only convenience and
		// validated here.
		if err := cluster.ValidBudgetW(r.BudgetW); err != nil {
			return rc, err
		}
		rc.budgetW = r.BudgetW
	case r.BudgetFrac != 0:
		if math.IsNaN(r.BudgetFrac) || r.BudgetFrac < 0 || r.BudgetFrac > 1 {
			return rc, fmt.Errorf("%w: global budget fraction %g outside (0, 1]", runner.ErrInvalidConfig, r.BudgetFrac)
		}
		rc.budgetFrac = r.BudgetFrac
	default:
		return rc, fmt.Errorf("%w: cluster needs a global budget (budget_w or budget_frac)", runner.ErrInvalidConfig)
	}
	name := r.Arbiter
	if name == "" {
		name = "static"
	}
	arb, ok := cluster.ArbiterByName(name)
	if !ok {
		return rc, fmt.Errorf("%w: unknown arbiter %q (want %s)", runner.ErrInvalidConfig, name, strings.Join(cluster.ArbiterNames(), ", "))
	}
	rc.arb = arb
	if len(r.Members) == 0 {
		return rc, fmt.Errorf("%w: cluster has no members", runner.ErrInvalidConfig)
	}
	if len(r.Members) > maxMembers {
		return rc, fmt.Errorf("%w: %d cluster members above the %d-session limit", ErrTooManySessions, len(r.Members), maxMembers)
	}
	seen := make(map[string]bool, len(r.Members))
	for i, mr := range r.Members {
		rm, err := resolveMember(mr, i, seen)
		if err != nil {
			return rc, err
		}
		rc.members = append(rc.members, rm)
	}
	return rc, nil
}

// ClusterMemberStatus is the static description of one group member.
type ClusterMemberStatus struct {
	ID        string  `json:"id"`
	Mix       string  `json:"mix"`
	Policy    string  `json:"policy"`
	Cores     int     `json:"cores"`
	Epochs    int     `json:"epochs"`
	Weight    float64 `json:"weight"`
	FloorFrac float64 `json:"floor_frac"`
	// TargetBIPS is the member's declared throughput SLO (0 = none).
	TargetBIPS float64 `json:"target_bips,omitempty"`
	PeakW      float64 `json:"peak_w"`
}

// ClusterStatus is the externally visible snapshot of one group.
type ClusterStatus struct {
	ID      string `json:"id"`
	State   State  `json:"state"`
	Arbiter string `json:"arbiter"`
	// BudgetW is the global budget currently in force (live retargets
	// included).
	BudgetW float64 `json:"budget_w"`
	// Epochs is the cluster horizon (the latest-finishing live member's
	// run length; attaches extend it, detaches and early finishes
	// shrink it); EpochsDone how many cluster epochs completed (and
	// stream).
	Epochs     int                   `json:"epochs"`
	EpochsDone int                   `json:"epochs_done"`
	Members    []ClusterMemberStatus `json:"members"`
	Error      string                `json:"error,omitempty"`
}

// group is the Manager-side state of one cluster-group tenant.
type group struct {
	id      string
	coord   *cluster.Coordinator
	arbName string

	ctx    context.Context
	cancel context.CancelFunc

	mu      sync.Mutex
	cond    *sync.Cond
	info    []ClusterMemberStatus // static member facts, attach appends
	recs    []cluster.EpochRecord // completed cluster epochs, in order
	state   State
	runErr  error
	results []cluster.MemberResult // set at terminal settle
	closed  bool
	// deadlineCut mirrors session.deadlineCut: the drain deadline
	// canceled this group while live.
	deadlineCut bool
}

// status snapshots the group. Callers must not hold g.mu.
func (g *group) status() ClusterStatus {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.statusLocked()
}

// statusLocked is the snapshot body; callers hold g.mu.
func (g *group) statusLocked() ClusterStatus {
	st := ClusterStatus{
		ID:         g.id,
		State:      g.state,
		Arbiter:    g.arbName,
		BudgetW:    g.coord.BudgetW(),
		Epochs:     g.coord.TotalEpochs(),
		EpochsDone: len(g.recs),
		Members:    append([]ClusterMemberStatus(nil), g.info...),
	}
	if g.runErr != nil {
		st.Error = g.runErr.Error()
	}
	return st
}

// finishLocked moves the group to a terminal state and finalizes every
// member's result. Callers hold g.mu.
func (g *group) finishLocked(st State, err error) {
	g.state = st
	g.runErr = err
	g.results = g.coord.Results()
	g.cond.Broadcast()
}

// cutShort mirrors session.cutShort for the drain-outcome accounting.
func (g *group) cutShort() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.state == StateCanceled && g.deadlineCut && !g.closed
}

// turn implements runnable: a group's scheduling turn is one cluster
// epoch — every live member advances one control epoch under the
// grants the arbiter just computed. A group therefore consumes member-
// count times the pool time of a solo session per turn, which is
// exactly its fair share: it is member-count tenants.
func (g *group) turn(m *Manager) { m.stepGroup(g) }

func (m *Manager) stepGroup(g *group) {
	g.mu.Lock()
	if g.state.Terminal() || g.closed {
		if !g.state.Terminal() {
			g.finishLocked(StateCanceled, context.Canceled)
		}
		g.mu.Unlock()
		m.notify(g.cutShort())
		return
	}
	g.state = StateRunning
	g.mu.Unlock()

	rec, err := g.coord.Step(g.ctx)

	g.mu.Lock()
	switch {
	case err == nil:
		m.met.clusterEpochs.Inc()
		g.recs = append(g.recs, rec)
		g.state = StateQueued
		g.cond.Broadcast()
	case errors.Is(err, cluster.ErrDone):
		g.finishLocked(StateDone, nil)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		g.finishLocked(StateCanceled, err)
	default:
		g.finishLocked(StateFailed, err)
	}
	terminal := g.state.Terminal()
	g.mu.Unlock()

	if terminal {
		m.notify(g.cutShort())
		return
	}
	m.requeue(g)
}

// memberStatus builds the static member facts from a resolved member
// and its built session.
func memberStatus(rm resolvedMember, ses *runner.Session) ClusterMemberStatus {
	mixName := rm.cfg.Mix.Name
	if mixName == "" && rm.cfg.Sim.Machine != nil {
		mixName = rm.cfg.Sim.Machine.Name
	}
	polName := "baseline"
	if rm.cfg.Policy != nil {
		polName = rm.cfg.Policy.Name()
	}
	return ClusterMemberStatus{
		ID:         rm.id,
		Mix:        mixName,
		Policy:     polName,
		Cores:      rm.cfg.Sim.Cores,
		Epochs:     rm.cfg.Epochs,
		Weight:     rm.weight,
		FloorFrac:  rm.floor,
		TargetBIPS: rm.target,
		PeakW:      ses.PeakPowerW(),
	}
}

// CreateCluster admits a cluster group: resolve and validate the
// request, build every member's simulator, assemble the coordinator,
// and enqueue the group for stepping. Members count against
// MaxSessions. Configuration problems wrap runner.ErrInvalidConfig;
// admission problems are ErrDraining / ErrTooManySessions.
func (m *Manager) CreateCluster(req ClusterRequest) (ClusterStatus, error) {
	rc, err := req.resolve(m.opt.MaxSessions)
	if err != nil {
		if errors.Is(err, ErrTooManySessions) {
			m.met.rejectLimit.Inc()
		} else {
			m.met.rejectInvalid.Inc()
		}
		return ClusterStatus{}, err
	}

	// Build outside the lock, like session creates.
	members := make([]cluster.Member, len(rc.members))
	info := make([]ClusterMemberStatus, len(rc.members))
	peaks := 0.0
	for i, rm := range rc.members {
		ses, err := runner.NewSession(rm.cfg)
		if err != nil {
			m.met.rejectInvalid.Inc()
			return ClusterStatus{}, fmt.Errorf("member %q: %w", rm.id, err)
		}
		peaks += ses.PeakPowerW()
		members[i] = cluster.Member{ID: rm.id, Weight: rm.weight, FloorFrac: rm.floor, TargetBIPS: rm.target, Session: ses}
		info[i] = memberStatus(rm, ses)
	}
	budget := rc.budgetW
	if rc.budgetFrac > 0 {
		budget = rc.budgetFrac * peaks
	}
	// Members step serially within the group's turn: each turn already
	// occupies one manager-pool worker, so an inner pool would multiply
	// concurrent simulation up to Workers² and break the -workers
	// compute bound the daemon promises.
	coord, err := cluster.New(cluster.Config{
		BudgetW: budget,
		Arbiter: rc.arb,
		Workers: 1,
	}, members)
	if err != nil {
		m.met.rejectInvalid.Inc()
		return ClusterStatus{}, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	g := &group{
		coord:   coord,
		arbName: rc.arb.Name(),
		ctx:     ctx,
		cancel:  cancel,
		info:    info,
		state:   StateQueued,
	}
	g.cond = sync.NewCond(&g.mu)

	m.mu.Lock()
	if m.draining || m.stopped {
		m.mu.Unlock()
		cancel()
		m.met.rejectDraining.Inc()
		return ClusterStatus{}, ErrDraining
	}
	if m.residentLoadLocked()+len(members) > m.opt.MaxSessions {
		m.mu.Unlock()
		cancel()
		m.met.rejectLimit.Inc()
		return ClusterStatus{}, fmt.Errorf("%w (%d members onto %d resident)", ErrTooManySessions, len(members), m.residentLoadLocked())
	}
	m.nextGID++
	g.id = "c" + strconv.FormatUint(m.nextGID, 10)
	// The metric label is the group id, assigned just now — installed
	// before the group is enqueued, so no Step can precede it.
	g.coord.SetMetrics(m.met.clusterMetrics(g.id))
	m.memberTotal += len(members)
	st := g.status()
	m.clusters[g.id] = g
	m.runq = append(m.runq, g)
	m.cond.Broadcast()
	m.mu.Unlock()
	m.met.clustersCreated.Inc()
	return st, nil
}

func (m *Manager) getGroup(id string) (*group, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.clusters[id]
	if !ok {
		return nil, fmt.Errorf("%w: cluster %q", ErrNotFound, id)
	}
	return g, nil
}

// ClusterStatus returns a group's current snapshot.
func (m *Manager) ClusterStatus(id string) (ClusterStatus, error) {
	g, err := m.getGroup(id)
	if err != nil {
		return ClusterStatus{}, err
	}
	return g.status(), nil
}

// ListClusters snapshots every resident group, ordered by creation.
func (m *Manager) ListClusters() []ClusterStatus {
	m.mu.Lock()
	all := make([]*group, 0, len(m.clusters))
	for _, g := range m.clusters {
		all = append(all, g)
	}
	m.mu.Unlock()
	sort.Slice(all, func(i, j int) bool { return numericID(all[i].id) < numericID(all[j].id) })
	out := make([]ClusterStatus, len(all))
	for i, g := range all {
		out[i] = g.status()
	}
	return out
}

// SetClusterBudget retargets a group's global budget: from the next
// cluster epoch the arbiter partitions w watts. Terminal groups (and
// groups stepping their final epoch, where no boundary remains for the
// change to land on) are refused with ErrFinished; invalid watts wrap
// runner.ErrInvalidConfig.
func (m *Manager) SetClusterBudget(id string, w float64) error {
	g, err := m.getGroup(id)
	if err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.state.Terminal() {
		return fmt.Errorf("%w: cluster %q is %s", ErrFinished, id, g.state)
	}
	if g.state == StateRunning && len(g.recs) == g.coord.TotalEpochs()-1 {
		return fmt.Errorf("%w: cluster %q is in its final epoch", ErrFinished, id)
	}
	// A group that has stepped its whole horizon but not yet taken the
	// settling turn that latches ErrDone is as good as terminal: no
	// boundary remains for the new budget (a pending attach would have
	// already extended TotalEpochs, so this cannot refuse a retarget
	// that still has an epoch to land on).
	if n := len(g.recs); n > 0 && n >= g.coord.TotalEpochs() {
		return fmt.Errorf("%w: cluster %q has no epochs remaining", ErrFinished, id)
	}
	if err := g.coord.SetBudgetW(w); err != nil {
		return err
	}
	m.met.retargetCluster.Inc()
	return nil
}

// AttachMember adds a member to a live group at its next epoch
// boundary. The member counts against MaxSessions; attaching to a
// terminal group fails with ErrFinished; duplicate ids and other
// configuration problems wrap runner.ErrInvalidConfig.
func (m *Manager) AttachMember(id string, req ClusterMemberRequest) (ClusterStatus, error) {
	g, err := m.getGroup(id)
	if err != nil {
		return ClusterStatus{}, err
	}
	// Position-derived default ids would collide after detaches; require
	// an explicit id on attach instead.
	if req.ID == "" {
		m.met.rejectInvalid.Inc()
		return ClusterStatus{}, fmt.Errorf("%w: attach needs an explicit member id", runner.ErrInvalidConfig)
	}
	rm, err := resolveMember(req, 0, map[string]bool{})
	if err != nil {
		m.met.rejectInvalid.Inc()
		return ClusterStatus{}, err
	}
	ses, err := runner.NewSession(rm.cfg)
	if err != nil {
		m.met.rejectInvalid.Inc()
		return ClusterStatus{}, fmt.Errorf("member %q: %w", rm.id, err)
	}

	// Reserve the admission slot first (m.mu strictly before g.mu, per
	// the lock order); release it if the group-side attach falls through.
	m.mu.Lock()
	if m.draining || m.stopped {
		m.mu.Unlock()
		m.met.rejectDraining.Inc()
		return ClusterStatus{}, ErrDraining
	}
	if m.residentLoadLocked() >= m.opt.MaxSessions {
		m.mu.Unlock()
		m.met.rejectLimit.Inc()
		return ClusterStatus{}, fmt.Errorf("%w (%d resident)", ErrTooManySessions, m.opt.MaxSessions)
	}
	m.memberTotal++
	m.mu.Unlock()
	unreserve := func() {
		m.mu.Lock()
		m.memberTotal--
		m.mu.Unlock()
	}

	g.mu.Lock()
	if g.state.Terminal() || g.closed {
		st := g.state
		g.mu.Unlock()
		unreserve()
		return ClusterStatus{}, fmt.Errorf("%w: cluster %q is %s", ErrFinished, id, st)
	}
	if err := g.coord.Attach(cluster.Member{ID: rm.id, Weight: rm.weight, FloorFrac: rm.floor, TargetBIPS: rm.target, Session: ses}); err != nil {
		g.mu.Unlock()
		unreserve()
		if errors.Is(err, cluster.ErrDone) {
			// The coordinator finalized between our state check and the
			// attach (its done latch is the authority): same refusal as a
			// terminal group.
			return ClusterStatus{}, fmt.Errorf("%w: cluster %q is finished", ErrFinished, id)
		}
		return ClusterStatus{}, err
	}
	g.info = append(g.info, memberStatus(rm, ses))
	st := g.statusLocked()
	g.mu.Unlock()
	m.met.memberAttach.Inc()
	return st, nil
}

// DetachMember removes a member from a live group at its next epoch
// boundary; its prefix result stays in the group's final results and
// its slot is not returned to the admission budget until the group is
// deleted. Detaching a member whose attach had not reached a boundary
// yet revokes the attach entirely: it leaves the status listing and
// frees its slot, matching the coordinator (which will never run or
// report it). Unknown members map to ErrNotFound.
func (m *Manager) DetachMember(id, memberID string) error {
	g, err := m.getGroup(id)
	if err != nil {
		return err
	}
	g.mu.Lock()
	if g.state.Terminal() || g.closed {
		st := g.state
		g.mu.Unlock()
		return fmt.Errorf("%w: cluster %q is %s", ErrFinished, id, st)
	}
	pending, err := g.coord.Detach(memberID)
	if err != nil {
		g.mu.Unlock()
		if errors.Is(err, cluster.ErrUnknownMember) {
			return fmt.Errorf("%w: cluster %q member %q", ErrNotFound, id, memberID)
		}
		if errors.Is(err, cluster.ErrDone) {
			return fmt.Errorf("%w: cluster %q is finished", ErrFinished, id)
		}
		return err
	}
	if pending {
		for i, info := range g.info {
			if info.ID == memberID {
				g.info = append(g.info[:i], g.info[i+1:]...)
				break
			}
		}
	}
	g.mu.Unlock()
	if pending {
		// The member never ran; return its admission slot (m.mu strictly
		// after releasing g.mu, per the lock order).
		m.mu.Lock()
		m.memberTotal--
		m.mu.Unlock()
	}
	m.met.memberDetach.Inc()
	return nil
}

// ClusterNext blocks until the cluster epoch record at index cursor is
// available and returns it, io.EOF at the end of a terminal (or
// deleted) group's stream — the same contract as Next for sessions.
func (m *Manager) ClusterNext(ctx context.Context, id string, cursor int) (cluster.EpochRecord, error) {
	if cursor < 0 {
		return cluster.EpochRecord{}, fmt.Errorf("%w: negative stream cursor %d", runner.ErrInvalidConfig, cursor)
	}
	g, err := m.getGroup(id)
	if err != nil {
		return cluster.EpochRecord{}, err
	}
	stop := context.AfterFunc(ctx, func() {
		g.mu.Lock()
		g.cond.Broadcast()
		g.mu.Unlock()
	})
	defer stop()

	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return cluster.EpochRecord{}, err
		}
		if cursor < len(g.recs) {
			return g.recs[cursor], nil
		}
		if g.state.Terminal() || g.closed {
			return cluster.EpochRecord{}, io.EOF
		}
		g.cond.Wait()
	}
}

// ClusterResult returns the finalized per-member aggregates of a
// terminal group (prefix results for canceled runs and detached
// members). Live groups return ErrNotFinished.
func (m *Manager) ClusterResult(id string) ([]cluster.MemberResult, error) {
	g, err := m.getGroup(id)
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.state.Terminal() {
		return nil, fmt.Errorf("%w: cluster %q is %s", ErrNotFinished, id, g.state)
	}
	return g.results, nil
}

// CloseCluster deletes a group: a live run is canceled at its next
// member-epoch boundary, stream watchers end, member slots return to
// the admission budget, and the id is removed immediately.
func (m *Manager) CloseCluster(id string) error {
	m.mu.Lock()
	g, ok := m.clusters[id]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: cluster %q", ErrNotFound, id)
	}
	delete(m.clusters, id)
	// closed is set in the same critical section that settles the member
	// accounting, so a racing AttachMember either lands before (and is
	// counted here) or observes closed and releases its reservation.
	g.mu.Lock()
	g.closed = true
	m.memberTotal -= len(g.info)
	g.cond.Broadcast()
	g.mu.Unlock()
	m.mu.Unlock()

	g.cancel()
	m.met.dropCluster(id)
	return nil
}
