package serve

import (
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// Metrics is the serving layer's instrumentation: every handle is
// resolved once at construction, so steady-state updates are single
// atomic ops and the zero value (no registry) disables everything —
// nil handles no-op, and instrumented code never branches on "metrics
// enabled". Build one with NewMetrics, pass it via Options.Metrics; the
// Manager registers its scrape-time gauges (sessions by state, queue
// depth) against the same registry when it starts.
//
// One Metrics serves one Manager: binding a second Manager to the same
// registry would re-register the gauge families and panic, by design —
// two managers silently summing into one family would be worse.
type Metrics struct {
	reg *metrics.Registry

	sessionsCreated *metrics.Counter
	clustersCreated *metrics.Counter
	sessionEpochs   *metrics.Counter
	clusterEpochs   *metrics.Counter
	stepSeconds     *metrics.Histogram

	rejectInvalid  *metrics.Counter
	rejectLimit    *metrics.Counter
	rejectDraining *metrics.Counter

	retargetSession *metrics.Counter
	retargetCluster *metrics.Counter

	memberAttach *metrics.Counter
	memberDetach *metrics.Counter

	drainClean *metrics.Counter
	drainCut   *metrics.Counter

	streamHeartbeats *metrics.Counter
	streamCompleted  *metrics.Counter
	streamClientGone *metrics.Counter

	// Per-cluster families, labeled by group id; series are dropped when
	// the group is deleted so a long-lived daemon's scrape stays bounded
	// by resident groups, not by every group that ever existed.
	clBudget   *metrics.GaugeVec
	clGrant    *metrics.GaugeVec
	clDraw     *metrics.GaugeVec
	clSlack    *metrics.GaugeVec
	clMembers  *metrics.GaugeVec
	clArb      *metrics.HistogramVec
	clFill     *metrics.CounterVec
	clSLOViol  *metrics.CounterVec
	clSLOSat   *metrics.GaugeVec
	clPredErr  *metrics.GaugeVec
	clPredErrH *metrics.HistogramVec
}

// arbitrationBuckets spans 100ns to ~0.4s: the water-fill runs in
// microseconds for realistic member counts, and the histogram should
// resolve that, not lump it under the first latency bucket.
var arbitrationBuckets = stats.ExpBuckets(1e-7, 4, 11)

// predictionErrorBuckets spans 0.01 W to ~2.6 kW of mean absolute
// prediction error — sub-watt buckets resolve a well-fitted forecast,
// the top buckets catch a model tracking a phase change.
var predictionErrorBuckets = stats.ExpBuckets(0.01, 4, 10)

// NewMetrics registers the serving-layer families on reg and returns
// the resolved handles. A nil registry returns nil — instrumentation
// fully disabled.
func NewMetrics(reg *metrics.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	rej := reg.CounterVec("fastcap_serve_admission_rejections_total",
		"Session/cluster creates refused, by reason.", "reason")
	ret := reg.CounterVec("fastcap_serve_retargets_total",
		"Accepted live budget retargets, by target kind.", "target")
	mem := reg.CounterVec("fastcap_serve_member_ops_total",
		"Cluster membership changes accepted by the serving layer.", "op")
	drains := reg.CounterVec("fastcap_serve_drains_total",
		"Manager drains, by outcome: clean (every session finished) or cut (the deadline canceled one).", "outcome")
	ends := reg.CounterVec("fastcap_serve_stream_terminations_total",
		"NDJSON stream endings, by cause: completed (stream reached its end) or client_gone (consumer hung up first).", "cause")
	return &Metrics{
		reg: reg,
		sessionsCreated: reg.Counter("fastcap_serve_sessions_created_total",
			"Solo sessions admitted."),
		clustersCreated: reg.Counter("fastcap_serve_cluster_groups_created_total",
			"Cluster groups admitted."),
		sessionEpochs: reg.Counter("fastcap_serve_session_epochs_total",
			"Solo-session control epochs completed."),
		clusterEpochs: reg.Counter("fastcap_serve_cluster_epochs_total",
			"Cluster epochs completed (each steps every live member once)."),
		stepSeconds: reg.Histogram("fastcap_serve_epoch_step_seconds",
			"Latency of one solo-session epoch step.", nil),
		rejectInvalid:   rej.With("invalid"),
		rejectLimit:     rej.With("limit"),
		rejectDraining:  rej.With("draining"),
		retargetSession: ret.With("session"),
		retargetCluster: ret.With("cluster"),
		memberAttach:    mem.With("attach"),
		memberDetach:    mem.With("detach"),
		drainClean:      drains.With("clean"),
		drainCut:        drains.With("cut"),
		streamHeartbeats: reg.Counter("fastcap_serve_stream_heartbeats_total",
			"Keepalive heartbeat lines emitted on idle NDJSON streams."),
		streamCompleted:  ends.With("completed"),
		streamClientGone: ends.With("client_gone"),
		clBudget: reg.GaugeVec("fastcap_cluster_budget_w",
			"Global watt budget in force at the cluster's last epoch.", "cluster"),
		clGrant: reg.GaugeVec("fastcap_cluster_grant_w",
			"Sum of member grants at the cluster's last epoch.", "cluster"),
		clDraw: reg.GaugeVec("fastcap_cluster_draw_w",
			"Sum of member measured power at the cluster's last epoch.", "cluster"),
		clSlack: reg.GaugeVec("fastcap_cluster_slack_w",
			"Granted minus drawn watts at the cluster's last epoch.", "cluster"),
		clMembers: reg.GaugeVec("fastcap_cluster_members",
			"Live members stepped in the cluster's last epoch.", "cluster"),
		clArb: reg.HistogramVec("fastcap_cluster_arbitration_seconds",
			"Latency of one arbitration round (ComputeGrants).", arbitrationBuckets, "cluster"),
		clFill: reg.CounterVec("fastcap_cluster_waterfill_passes_total",
			"Water-fill redistribution passes accumulated across epochs.", "cluster"),
		clSLOViol: reg.CounterVec("fastcap_cluster_slo_violations_total",
			"Member transitions into SLO violation (throughput fell below the contracted band).", "cluster"),
		clSLOSat: reg.GaugeVec("fastcap_cluster_slo_satisfied_members",
			"Contracted members meeting their BIPS target at the cluster's last epoch.", "cluster"),
		clPredErr: reg.GaugeVec("fastcap_cluster_prediction_error_w",
			"Forecasting arbiter's mean absolute one-epoch-ahead prediction error at the cluster's last epoch, in watts.", "cluster"),
		clPredErrH: reg.HistogramVec("fastcap_cluster_prediction_abs_error_w",
			"Distribution of per-epoch mean absolute prediction error, in watts.", predictionErrorBuckets, "cluster"),
	}
}

// bind registers the Manager-backed scrape-time gauges. Called once
// from NewManager.
func (mt *Metrics) bind(m *Manager) {
	if mt == nil || mt.reg == nil {
		return
	}
	states := []State{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled}
	sv := mt.reg.GaugeVec("fastcap_serve_sessions",
		"Resident solo sessions by lifecycle state.", "state")
	gv := mt.reg.GaugeVec("fastcap_serve_cluster_groups",
		"Resident cluster groups by lifecycle state.", "state")
	for _, st := range states {
		st := st
		sv.WithFunc(func() float64 { return float64(m.countSessions(st)) }, string(st))
		gv.WithFunc(func() float64 { return float64(m.countGroups(st)) }, string(st))
	}
	mt.reg.GaugeFunc("fastcap_serve_queue_depth",
		"Runnable tenants waiting for a scheduler worker.",
		func() float64 { return float64(m.queueDepth()) })
	mt.reg.GaugeFunc("fastcap_serve_resident_sessions",
		"Resident sessions, cluster members included (the admission load).",
		func() float64 { return float64(m.Count()) })
}

// clusterMetrics resolves the per-cluster handle set for one group id.
func (mt *Metrics) clusterMetrics(id string) cluster.Metrics {
	if mt == nil || mt.reg == nil {
		return cluster.Metrics{}
	}
	return cluster.Metrics{
		BudgetW:            mt.clBudget.With(id),
		GrantW:             mt.clGrant.With(id),
		DrawW:              mt.clDraw.With(id),
		SlackW:             mt.clSlack.With(id),
		Members:            mt.clMembers.With(id),
		ArbitrationSeconds: mt.clArb.With(id),
		FillPasses:         mt.clFill.With(id),
		SLOViolations:      mt.clSLOViol.With(id),
		SLOSatisfied:       mt.clSLOSat.With(id),
		PredictionErrW:     mt.clPredErr.With(id),
		PredictionAbsErrW:  mt.clPredErrH.With(id),
	}
}

// dropCluster removes a deleted group's labeled series.
func (mt *Metrics) dropCluster(id string) {
	if mt == nil || mt.reg == nil {
		return
	}
	mt.clBudget.Delete(id)
	mt.clGrant.Delete(id)
	mt.clDraw.Delete(id)
	mt.clSlack.Delete(id)
	mt.clMembers.Delete(id)
	mt.clArb.Delete(id)
	mt.clFill.Delete(id)
	mt.clSLOViol.Delete(id)
	mt.clSLOSat.Delete(id)
	mt.clPredErr.Delete(id)
	mt.clPredErrH.Delete(id)
}

// countSessions snapshots how many resident solo sessions sit in state
// st. Scrape-time only; takes m.mu then each s.mu, per the lock order.
func (m *Manager) countSessions(st State) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, s := range m.sessions {
		s.mu.Lock()
		if s.state == st {
			n++
		}
		s.mu.Unlock()
	}
	return n
}

// countGroups is countSessions for cluster groups.
func (m *Manager) countGroups(st State) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, g := range m.clusters {
		g.mu.Lock()
		if g.state == st {
			n++
		}
		g.mu.Unlock()
	}
	return n
}

// queueDepth snapshots the runnable-queue length.
func (m *Manager) queueDepth() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.runq)
}
