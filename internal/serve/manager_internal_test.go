package serve

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/runner"
)

// A retarget against a session whose final epoch is already in flight
// can never take effect — it must be refused like a terminal session,
// not acknowledged with a hollow success. The window is transient under
// the real scheduler, so this test builds the session state by hand.
func TestSetBudgetMidFinalEpoch(t *testing.T) {
	m := NewManager(Options{Workers: 1})
	defer m.Shutdown(context.Background())

	cfg, err := Request{Mix: "MIX3", BudgetFrac: 0.6, Cores: 4, Epochs: 2, EpochMs: 0.5}.Config()
	if err != nil {
		t.Fatal(err)
	}
	ses, err := runner.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := &session{id: "t1", cfg: cfg, ses: ses, ctx: ctx, cancel: cancel, state: StateRunning}
	s.cond = sync.NewCond(&s.mu)
	s.recs = make([]runner.EpochRecord, cfg.Epochs-1) // epoch 2 of 2 in flight
	m.mu.Lock()
	m.sessions[s.id] = s
	m.mu.Unlock()
	// The session never enters the run queue, so remove it before the
	// deferred Shutdown would wait forever for it to turn terminal.
	defer func() {
		m.mu.Lock()
		delete(m.sessions, s.id)
		m.mu.Unlock()
	}()

	if err := m.SetBudget(s.id, 0.5); !errors.Is(err, ErrFinished) {
		t.Errorf("retarget mid-final-epoch: %v, want ErrFinished", err)
	}
	// Queued at the same cursor the final epoch has not started yet —
	// the retarget lands at its beginning and must be accepted.
	s.mu.Lock()
	s.state = StateQueued
	s.mu.Unlock()
	if err := m.SetBudget(s.id, 0.5); err != nil {
		t.Errorf("retarget before the final epoch starts: %v", err)
	}
}

// A session the drain deadline cut short still counts as cut even when
// a client deletes it before Shutdown checks: the verdict is recorded
// sticky at settle time, not scanned from the session table. The settle
// ordering is scheduler-transient, so the deadline's work (mark + ctx
// cancel) is staged by hand and a real worker settles the session.
func TestShutdownCutSurvivesClientDelete(t *testing.T) {
	m := NewManager(Options{Workers: 1})

	cfg, err := Request{Mix: "MIX3", BudgetFrac: 0.6, Cores: 4, Epochs: 5, EpochMs: 0.5}.Config()
	if err != nil {
		t.Fatal(err)
	}
	ses, err := runner.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sctx, cancel := context.WithCancel(context.Background())
	s := &session{id: "t9", cfg: cfg, ses: ses, ctx: sctx, cancel: cancel, state: StateQueued, deadlineCut: true}
	s.cond = sync.NewCond(&s.mu)
	cancel() // the deadline already canceled it, mid-drain
	m.mu.Lock()
	m.sessions[s.id] = s
	m.runq = append(m.runq, s)
	m.cond.Broadcast()
	m.mu.Unlock()

	// A worker pops it and settles it canceled.
	s.mu.Lock()
	for !s.state.Terminal() {
		s.cond.Wait()
	}
	settled := s.state
	s.mu.Unlock()
	if settled != StateCanceled {
		t.Fatalf("deadline-canceled session settled %s, want canceled", settled)
	}

	// The client deletes the cut session before Shutdown gets to look.
	if err := m.Close(s.id); err != nil {
		t.Fatal(err)
	}
	ctx, done := context.WithCancel(context.Background())
	done()
	if err := m.Shutdown(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("cut drain after client delete reported %v, want context.Canceled", err)
	}
}
