package serve

import (
	"fmt"
	"math"

	"repro/internal/policy"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Serving-layer sanity bounds on a single session: requests beyond
// them are rejected with runner.ErrInvalidConfig. They exist because
// the HTTP surface is unauthenticated — the library imposes no such
// limits. MaxEpochCells bounds Epochs × Cores, the size driver of the
// session's flat record buffers (~50 MB at the limit); MaxEpochMs
// bounds how long one epoch (the cancellation granularity) can occupy
// a scheduler worker; MaxControllers bounds the per-controller memsim
// build and the Cores × Controllers access matrix (the largest default
// machine has 64 banks, so more controllers than that cannot each own
// a bank anyway).
const (
	MaxEpochs      = 100_000
	MaxCores       = 1024
	MaxEpochCells  = 2_000_000
	MaxEpochMs     = 10_000
	MaxControllers = 64
)

// Request describes one capping session to create — the JSON body of
// POST /sessions. Zero-valued optional fields take the defaults noted
// below; Mix and BudgetFrac must be set. Epochs, Cores and EpochMs are
// additionally bounded by MaxEpochs / MaxCores / MaxEpochMs.
type Request struct {
	// Mix is the Table III workload name (ILP1..MIX4). Required.
	Mix string `json:"mix"`
	// Policy is the capping algorithm: FastCap, CPU-only, Freq-Par,
	// Eql-Pwr, Eql-Freq, MaxBIPS, Greedy, or baseline (no capping).
	// Defaults to FastCap.
	Policy string `json:"policy,omitempty"`
	// BudgetFrac is the power budget as a fraction of peak, in (0, 1].
	BudgetFrac float64 `json:"budget_frac"`
	// Cores is the machine size, a positive multiple of 4. Default 16.
	Cores int `json:"cores,omitempty"`
	// Epochs is the run length. Default 40.
	Epochs int `json:"epochs,omitempty"`
	// EpochMs is the control epoch length in milliseconds (the paper
	// uses 5; the profiling window is a tenth, capped at 300 µs).
	// Default 1.
	EpochMs float64 `json:"epoch_ms,omitempty"`
	// Seed seeds the simulation. Default 1.
	Seed int64 `json:"seed,omitempty"`
	// OoO selects idealized out-of-order cores.
	OoO bool `json:"ooo,omitempty"`
	// Controllers is the memory controller count; values above 1 split
	// the default bank population across controllers. Default 1.
	Controllers int `json:"controllers,omitempty"`
	// SkewedAccess skews the per-core controller access distribution
	// (meaningful with Controllers > 1).
	SkewedAccess bool `json:"skewed_access,omitempty"`
	// Record captures the session's measurement windows via
	// internal/replay; the trace is served at /sessions/{id}/recording
	// once the session finishes.
	Record bool `json:"record,omitempty"`
}

func (r Request) withDefaults() Request {
	if r.Policy == "" {
		r.Policy = "FastCap"
	}
	if r.Cores == 0 {
		r.Cores = 16
	}
	if r.Epochs == 0 {
		r.Epochs = 40
	}
	if r.EpochMs == 0 {
		r.EpochMs = 1
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Controllers == 0 {
		r.Controllers = 1
	}
	return r
}

// policyByName instantiates a fresh policy per session — instances keep
// scratch state and must never be shared across concurrent runs.
func policyByName(name string) (policy.Policy, error) {
	switch name {
	case "FastCap":
		return policy.NewFastCap(), nil
	case "CPU-only":
		return policy.NewCPUOnly(), nil
	case "Freq-Par":
		return policy.NewFreqPar(), nil
	case "Eql-Pwr":
		return policy.NewEqlPwr(), nil
	case "Eql-Freq":
		return policy.NewEqlFreq(), nil
	case "MaxBIPS":
		return policy.NewMaxBIPS(), nil
	case "Greedy":
		return policy.NewGreedy(), nil
	case "baseline":
		return nil, nil
	default:
		return nil, fmt.Errorf("%w: unknown policy %q", runner.ErrInvalidConfig, name)
	}
}

// Config resolves the request (after defaults) into the runner
// configuration the session executes — the exact same configuration a
// caller would hand to runner.Run to reproduce the session solo, which
// is how the golden tests verify the service. Validation failures wrap
// runner.ErrInvalidConfig; the runner's own fail-fast checks (budget
// range, mix contents, machine shape) run at session construction.
func (r Request) Config() (runner.Config, error) {
	r = r.withDefaults()
	mix, err := workload.MixByName(r.Mix)
	if err != nil {
		return runner.Config{}, fmt.Errorf("%w: %w", runner.ErrInvalidConfig, err)
	}
	pol, err := policyByName(r.Policy)
	if err != nil {
		return runner.Config{}, err
	}
	// The serve layer fronts an unauthenticated HTTP surface, so beyond
	// the runner's correctness validation it enforces sanity bounds: a
	// non-finite or huge epoch length would wedge a scheduler worker
	// inside one Step (cancellation is epoch-granular), and an enormous
	// epoch count or core count would allocate the session's flat
	// record buffers into an OOM kill before admission control runs.
	if math.IsNaN(r.EpochMs) || math.IsInf(r.EpochMs, 0) || r.EpochMs <= 0 || r.EpochMs > MaxEpochMs {
		return runner.Config{}, fmt.Errorf("%w: epoch length %g ms, want in (0, %g]", runner.ErrInvalidConfig, r.EpochMs, float64(MaxEpochMs))
	}
	if r.Epochs > MaxEpochs {
		return runner.Config{}, fmt.Errorf("%w: epoch count %d above the serving limit %d", runner.ErrInvalidConfig, r.Epochs, MaxEpochs)
	}
	if r.Cores > MaxCores {
		return runner.Config{}, fmt.Errorf("%w: core count %d above the serving limit %d", runner.ErrInvalidConfig, r.Cores, MaxCores)
	}
	if r.Epochs > 0 && r.Cores > 0 && r.Epochs*r.Cores > MaxEpochCells {
		return runner.Config{}, fmt.Errorf("%w: %d epochs × %d cores above the serving limit of %d epoch-cells",
			runner.ErrInvalidConfig, r.Epochs, r.Cores, MaxEpochCells)
	}
	if r.Controllers < 1 {
		return runner.Config{}, fmt.Errorf("%w: controller count %d, want >= 1", runner.ErrInvalidConfig, r.Controllers)
	}
	if r.Controllers > MaxControllers {
		return runner.Config{}, fmt.Errorf("%w: controller count %d above the serving limit %d", runner.ErrInvalidConfig, r.Controllers, MaxControllers)
	}
	sc := sim.DefaultConfig(r.Cores)
	sc.EpochNs = r.EpochMs * 1e6
	sc.ProfileNs = sc.EpochNs / 10
	if sc.ProfileNs > 3e5 {
		sc.ProfileNs = 3e5 // the paper's 300 µs profiling phase
	}
	sc.OoO = r.OoO
	sc.Seed = r.Seed
	if r.Controllers > 1 {
		// Splitting the default bank population must leave every
		// controller at least one bank — a zero quotient would make
		// sim.New silently substitute 32 banks per controller and build
		// a machine far larger than the request described.
		banks := sc.BanksPerController / r.Controllers
		if banks < 1 {
			return runner.Config{}, fmt.Errorf("%w: %d controllers split %d banks to none each",
				runner.ErrInvalidConfig, r.Controllers, sc.BanksPerController)
		}
		sc.Controllers = r.Controllers
		sc.BanksPerController = banks
		sc.SkewedAccess = r.SkewedAccess
	}
	return runner.Config{
		Sim:        sc,
		Mix:        mix,
		BudgetFrac: r.BudgetFrac,
		Epochs:     r.Epochs,
		Policy:     pol,
	}, nil
}
