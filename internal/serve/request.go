package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/cpusim"
	"repro/internal/dvfs"
	"repro/internal/policy"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Serving-layer sanity bounds on a single session: requests beyond
// them are rejected with runner.ErrInvalidConfig. They exist because
// the HTTP surface is unauthenticated — the library imposes no such
// limits. MaxEpochCells bounds Epochs × Cores, the size driver of the
// session's flat record buffers (~50 MB at the limit); MaxEpochMs
// bounds how long one epoch (the cancellation granularity) can occupy
// a scheduler worker; MaxControllers bounds the per-controller memsim
// build and the Cores × Controllers access matrix (the largest default
// machine has 64 banks, so more controllers than that cannot each own
// a bank anyway).
const (
	MaxEpochs      = 100_000
	MaxCores       = 1024
	MaxEpochCells  = 2_000_000
	MaxEpochMs     = 10_000
	MaxControllers = 64
	// MaxCoreClasses bounds a heterogeneous machine request's class
	// list, and MaxLadderSteps each class's explicit ladder — both size
	// per-session allocations on an unauthenticated surface.
	MaxCoreClasses = 16
	MaxLadderSteps = 64
	// MaxPhaseShifts bounds a request's phase schedule; the workload
	// layer validates the entries themselves (ascending epochs, finite
	// positive scales).
	MaxPhaseShifts = 64
)

// Request describes one capping session to create — the JSON body of
// POST /sessions. Zero-valued optional fields take the defaults noted
// below; Mix and BudgetFrac must be set. Epochs, Cores and EpochMs are
// additionally bounded by MaxEpochs / MaxCores / MaxEpochMs.
type Request struct {
	// Mix is the Table III workload name (ILP1..MIX4). Required.
	Mix string `json:"mix"`
	// Policy is the capping algorithm: FastCap, CPU-only, Freq-Par,
	// Eql-Pwr, Eql-Freq, MaxBIPS, Greedy, or baseline (no capping).
	// Defaults to FastCap.
	Policy string `json:"policy,omitempty"`
	// BudgetFrac is the power budget as a fraction of peak, in (0, 1].
	BudgetFrac float64 `json:"budget_frac"`
	// Cores is the machine size, a positive multiple of 4. Default 16.
	Cores int `json:"cores,omitempty"`
	// Epochs is the run length. Default 40.
	Epochs int `json:"epochs,omitempty"`
	// EpochMs is the control epoch length in milliseconds (the paper
	// uses 5; the profiling window is a tenth, capped at 300 µs).
	// Default 1.
	EpochMs float64 `json:"epoch_ms,omitempty"`
	// Seed seeds the simulation. Default 1.
	Seed int64 `json:"seed,omitempty"`
	// OoO selects idealized out-of-order cores.
	OoO bool `json:"ooo,omitempty"`
	// Controllers is the memory controller count; values above 1 split
	// the default bank population across controllers. Default 1.
	Controllers int `json:"controllers,omitempty"`
	// SkewedAccess skews the per-core controller access distribution
	// (meaningful with Controllers > 1).
	SkewedAccess bool `json:"skewed_access,omitempty"`
	// Record captures the session's measurement windows via
	// internal/replay; the trace is served at /sessions/{id}/recording
	// once the session finishes.
	Record bool `json:"record,omitempty"`
	// Machine, when set, builds a heterogeneous machine from named core
	// classes instead of the homogeneous default; class counts must sum
	// to Cores. When every class pins apps, Mix may be omitted.
	Machine *MachineRequest `json:"machine,omitempty"`
	// Phases shifts the workload's intensity mid-run: each entry scales
	// every app's phase multiplier from its epoch on (diurnal load,
	// batch-window surges). Epochs strictly ascending within [0,
	// MaxEpochs), at most MaxPhaseShifts entries.
	Phases workload.PhaseSchedule `json:"phases,omitempty"`
}

// MachineRequest is the JSON form of a heterogeneous machine spec.
type MachineRequest struct {
	// Name labels the machine in results ("bigLITTLE-4+12"); defaults
	// to "custom".
	Name string `json:"name,omitempty"`
	// Classes in core-index order.
	Classes []ClassRequest `json:"classes"`
}

// ClassRequest describes one core class. The ladder comes either from
// a named preset (Ladder) or an explicit uniform ladder (LadderSteps +
// frequency/voltage range) — setting both is rejected. Zero-valued
// power fields inherit the default core calibration.
type ClassRequest struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
	// Ladder is a preset name: "perf" (the paper's 2.2–4.0 GHz ladder,
	// the default), "efficiency" (1.2–2.4 GHz), or "binned"
	// (2.0–3.6 GHz).
	Ladder string `json:"ladder,omitempty"`
	// Explicit uniform ladder: LadderSteps equally spaced frequencies in
	// [FMinGHz, FMaxGHz] at voltages in [VMinV, VMaxV].
	LadderSteps int     `json:"ladder_steps,omitempty"`
	FMinGHz     float64 `json:"fmin_ghz,omitempty"`
	FMaxGHz     float64 `json:"fmax_ghz,omitempty"`
	VMinV       float64 `json:"vmin_v,omitempty"`
	VMaxV       float64 `json:"vmax_v,omitempty"`
	// Power calibration; each zero-valued field inherits the default
	// core calibration individually (an all-zero triple inherits it
	// whole), so a class may override just dyn_max_w without silently
	// zeroing its leakage floor.
	DynMaxW  float64 `json:"dyn_max_w,omitempty"`
	StaticW  float64 `json:"static_w,omitempty"`
	GateFrac float64 `json:"gate_frac,omitempty"`
	// ExecCPIScale multiplies app CPI on this class (0 means 1).
	ExecCPIScale float64 `json:"exec_cpi_scale,omitempty"`
	// Apps pins applications to this class's cores (all classes or
	// none; count must be a multiple of len(Apps)).
	Apps []string `json:"apps,omitempty"`
}

// hasPlacement reports whether any class pins apps.
func (m *MachineRequest) hasPlacement() bool {
	for _, c := range m.Classes {
		if len(c.Apps) > 0 {
			return true
		}
	}
	return false
}

// spec resolves the request into a sim.MachineSpec, applying the
// serving layer's resource bounds before any ladder is built.
func (m *MachineRequest) spec() (*sim.MachineSpec, error) {
	if len(m.Classes) == 0 {
		return nil, fmt.Errorf("%w: machine has no core classes", runner.ErrInvalidConfig)
	}
	if len(m.Classes) > MaxCoreClasses {
		return nil, fmt.Errorf("%w: %d core classes above the serving limit %d", runner.ErrInvalidConfig, len(m.Classes), MaxCoreClasses)
	}
	name := m.Name
	if name == "" {
		name = "custom"
	}
	spec := &sim.MachineSpec{Name: name}
	for _, c := range m.Classes {
		if c.LadderSteps < 0 || c.LadderSteps > MaxLadderSteps {
			return nil, fmt.Errorf("%w: class %q ladder steps %d outside [1, %d]", runner.ErrInvalidConfig, c.Name, c.LadderSteps, MaxLadderSteps)
		}
		var ladder *dvfs.Ladder
		var err error
		switch {
		case c.LadderSteps > 0 && c.Ladder != "":
			return nil, fmt.Errorf("%w: class %q sets both a ladder preset and an explicit ladder", runner.ErrInvalidConfig, c.Name)
		case c.LadderSteps > 0:
			ladder, err = dvfs.NewUniformLadder(c.LadderSteps, c.FMinGHz, c.FMaxGHz, c.VMinV, c.VMaxV)
		default:
			ladder, err = dvfs.NamedCoreLadder(c.Ladder)
		}
		if err != nil {
			return nil, fmt.Errorf("%w: class %q ladder: %w", runner.ErrInvalidConfig, c.Name, err)
		}
		pw := cpusim.PowerConfig{DynMaxW: c.DynMaxW, StaticW: c.StaticW, GateFrac: c.GateFrac}
		if pw != (cpusim.PowerConfig{}) {
			// Partial power specs fill omitted fields from the default
			// calibration; the layout's whole-struct inheritance would
			// otherwise take literal zeros and deflate the machine peak.
			def := cpusim.DefaultPower()
			if pw.DynMaxW == 0 {
				pw.DynMaxW = def.DynMaxW
			}
			if pw.StaticW == 0 {
				pw.StaticW = def.StaticW
			}
			if pw.GateFrac == 0 {
				pw.GateFrac = def.GateFrac
			}
		}
		spec.Classes = append(spec.Classes, sim.CoreClass{
			Name:         c.Name,
			Count:        c.Count,
			Ladder:       ladder,
			Power:        pw,
			ExecCPIScale: c.ExecCPIScale,
			Apps:         c.Apps,
		})
	}
	return spec, nil
}

func (r Request) withDefaults() Request {
	if r.Policy == "" {
		r.Policy = "FastCap"
	}
	if r.Cores == 0 {
		r.Cores = 16
	}
	if r.Epochs == 0 {
		r.Epochs = 40
	}
	if r.EpochMs == 0 {
		r.EpochMs = 1
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Controllers == 0 {
		r.Controllers = 1
	}
	return r
}

// policyByName instantiates a fresh policy per session — instances keep
// scratch state and must never be shared across concurrent runs.
func policyByName(name string) (policy.Policy, error) {
	switch name {
	case "FastCap":
		return policy.NewFastCap(), nil
	case "CPU-only":
		return policy.NewCPUOnly(), nil
	case "Freq-Par":
		return policy.NewFreqPar(), nil
	case "Eql-Pwr":
		return policy.NewEqlPwr(), nil
	case "Eql-Freq":
		return policy.NewEqlFreq(), nil
	case "MaxBIPS":
		return policy.NewMaxBIPS(), nil
	case "Greedy":
		return policy.NewGreedy(), nil
	case "baseline":
		return nil, nil
	default:
		return nil, fmt.Errorf("%w: unknown policy %q", runner.ErrInvalidConfig, name)
	}
}

// Config resolves the request (after defaults) into the runner
// configuration the session executes — the exact same configuration a
// caller would hand to runner.Run to reproduce the session solo, which
// is how the golden tests verify the service. Validation failures wrap
// runner.ErrInvalidConfig; the runner's own fail-fast checks (budget
// range, mix contents, machine shape) run at session construction.
func (r Request) Config() (runner.Config, error) {
	r = r.withDefaults()
	var mix workload.MixSpec
	if r.Mix == "" && r.Machine != nil && r.Machine.hasPlacement() {
		// Full placement supplies the workload; no Table III mix needed.
	} else {
		var err error
		mix, err = workload.MixByName(r.Mix)
		if err != nil {
			return runner.Config{}, fmt.Errorf("%w: %w", runner.ErrInvalidConfig, err)
		}
	}
	pol, err := policyByName(r.Policy)
	if err != nil {
		return runner.Config{}, err
	}
	// The serve layer fronts an unauthenticated HTTP surface, so beyond
	// the runner's correctness validation it enforces sanity bounds: a
	// non-finite or huge epoch length would wedge a scheduler worker
	// inside one Step (cancellation is epoch-granular), and an enormous
	// epoch count or core count would allocate the session's flat
	// record buffers into an OOM kill before admission control runs.
	if math.IsNaN(r.EpochMs) || math.IsInf(r.EpochMs, 0) || r.EpochMs <= 0 || r.EpochMs > MaxEpochMs {
		return runner.Config{}, fmt.Errorf("%w: epoch length %g ms, want in (0, %g]", runner.ErrInvalidConfig, r.EpochMs, float64(MaxEpochMs))
	}
	if r.Epochs > MaxEpochs {
		return runner.Config{}, fmt.Errorf("%w: epoch count %d above the serving limit %d", runner.ErrInvalidConfig, r.Epochs, MaxEpochs)
	}
	if r.Cores > MaxCores {
		return runner.Config{}, fmt.Errorf("%w: core count %d above the serving limit %d", runner.ErrInvalidConfig, r.Cores, MaxCores)
	}
	if r.Epochs > 0 && r.Cores > 0 && r.Epochs*r.Cores > MaxEpochCells {
		return runner.Config{}, fmt.Errorf("%w: %d epochs × %d cores above the serving limit of %d epoch-cells",
			runner.ErrInvalidConfig, r.Epochs, r.Cores, MaxEpochCells)
	}
	if r.Controllers < 1 {
		return runner.Config{}, fmt.Errorf("%w: controller count %d, want >= 1", runner.ErrInvalidConfig, r.Controllers)
	}
	if r.Controllers > MaxControllers {
		return runner.Config{}, fmt.Errorf("%w: controller count %d above the serving limit %d", runner.ErrInvalidConfig, r.Controllers, MaxControllers)
	}
	sc := sim.DefaultConfig(r.Cores)
	sc.EpochNs = r.EpochMs * 1e6
	sc.ProfileNs = sc.EpochNs / 10
	if sc.ProfileNs > 3e5 {
		sc.ProfileNs = 3e5 // the paper's 300 µs profiling phase
	}
	sc.OoO = r.OoO
	sc.Seed = r.Seed
	if r.Controllers > 1 {
		// Splitting the default bank population must leave every
		// controller at least one bank — a zero quotient would make
		// sim.New silently substitute 32 banks per controller and build
		// a machine far larger than the request described.
		banks := sc.BanksPerController / r.Controllers
		if banks < 1 {
			return runner.Config{}, fmt.Errorf("%w: %d controllers split %d banks to none each",
				runner.ErrInvalidConfig, r.Controllers, sc.BanksPerController)
		}
		sc.Controllers = r.Controllers
		sc.BanksPerController = banks
		sc.SkewedAccess = r.SkewedAccess
	}
	if r.Machine != nil {
		spec, err := r.Machine.spec()
		if err != nil {
			return runner.Config{}, err
		}
		if n := spec.TotalCores(); n != r.Cores {
			return runner.Config{}, fmt.Errorf("%w: machine classes describe %d cores, request has %d", runner.ErrInvalidConfig, n, r.Cores)
		}
		sc.Machine = spec
	}
	if len(r.Phases) > MaxPhaseShifts {
		return runner.Config{}, fmt.Errorf("%w: %d phase shifts above the serving limit %d", runner.ErrInvalidConfig, len(r.Phases), MaxPhaseShifts)
	}
	if err := r.Phases.Validate(); err != nil {
		return runner.Config{}, fmt.Errorf("%w: %w", runner.ErrInvalidConfig, err)
	}
	for _, sh := range r.Phases {
		if sh.Epoch >= MaxEpochs {
			return runner.Config{}, fmt.Errorf("%w: phase shift at epoch %d above the serving limit %d", runner.ErrInvalidConfig, sh.Epoch, MaxEpochs)
		}
	}
	sc.PhaseSchedule = r.Phases
	return runner.Config{
		Sim:        sc,
		Mix:        mix,
		BudgetFrac: r.BudgetFrac,
		Epochs:     r.Epochs,
		Policy:     pol,
	}, nil
}

// SessionFromSpec builds a standalone session from a Request encoded as
// JSON — the session-builder hook the distributed agent layer
// (internal/dist) uses, so remote cluster members are declared with
// exactly the session schema this API serves. Strict decode: unknown
// fields fail typed. Recording is a serving-layer feature and is
// rejected here — a remote member's recording would be unreachable.
func SessionFromSpec(raw json.RawMessage) (*runner.Session, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("%w: member session spec: %w", runner.ErrInvalidConfig, err)
	}
	if req.Record {
		return nil, fmt.Errorf("%w: member session spec: record is not supported for remote cluster members", runner.ErrInvalidConfig)
	}
	cfg, err := req.Config()
	if err != nil {
		return nil, err
	}
	return runner.NewSession(cfg)
}
