package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/replay"
	"repro/internal/runner"
	"repro/internal/serve"
)

// quickReq is a small, fast session request; variants tweak it.
func quickReq(mix string, cores, epochs int, budget float64) serve.Request {
	return serve.Request{
		Mix:        mix,
		Policy:     "FastCap",
		BudgetFrac: budget,
		Cores:      cores,
		Epochs:     epochs,
		EpochMs:    0.5,
	}
}

// soloRun executes the request's exact configuration directly through
// runner.Run — the single-tenant ground truth the service must match.
func soloRun(t *testing.T, req serve.Request) *runner.Result {
	t.Helper()
	cfg, err := req.Config()
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// collect drains a session's stream through Manager.Next and returns
// every record, then the finalized result.
func collect(t *testing.T, m *serve.Manager, id string) ([]runner.EpochRecord, *runner.Result) {
	t.Helper()
	var recs []runner.EpochRecord
	for cursor := 0; ; cursor++ {
		rec, err := m.Next(context.Background(), id, cursor)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("Next(%s, %d): %v", id, cursor, err)
		}
		recs = append(recs, rec)
	}
	res, err := m.Result(id)
	if err != nil {
		t.Fatalf("Result(%s): %v", id, err)
	}
	return recs, res
}

// mustJSON marshals for byte-level comparison.
func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// The acceptance test of the serving layer, and the race-stress proof
// of session isolation: eight concurrent sessions — different mixes,
// policies, budgets, seeds and shapes, stepped interleaved by a pool
// smaller than the tenant count — must each produce an epoch stream
// and final result byte-identical to running the same configuration
// alone through runner.Run. On a 1-CPU host wall-clock proves nothing;
// bit-equality under -race is the parallelism proof.
func TestConcurrentSessionsMatchSoloRuns(t *testing.T) {
	reqs := []serve.Request{
		quickReq("MIX3", 4, 8, 0.6),
		quickReq("MID1", 4, 6, 0.7),
		quickReq("MEM2", 4, 7, 0.5),
		quickReq("ILP1", 8, 6, 0.6),
		quickReq("MIX1", 4, 9, 0.8),
		quickReq("MID2", 8, 5, 0.65),
		quickReq("MEM4", 4, 6, 0.9),
		quickReq("MIX2", 4, 10, 0.55),
	}
	reqs[1].Policy = "baseline"
	reqs[2].Policy = "Eql-Pwr"
	reqs[4].Policy = "Greedy"
	reqs[5].Policy = "Freq-Par"
	reqs[3].Seed = 7
	reqs[6].Seed = 42
	reqs[7].Record = true // capture must not perturb the run

	m := serve.NewManager(serve.Options{Workers: 3, MaxSessions: 16})
	defer m.Shutdown(context.Background())

	ids := make([]string, len(reqs))
	for i, req := range reqs {
		st, err := m.Create(req)
		if err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
		if st.State.Terminal() {
			t.Fatalf("create %d: session born terminal (%s)", i, st.State)
		}
		ids[i] = st.ID
	}

	// Drain all eight streams concurrently while the pool steps them
	// interleaved — the multi-tenant load pattern.
	var wg sync.WaitGroup
	type outcome struct {
		recs []runner.EpochRecord
		res  *runner.Result
	}
	outs := make([]outcome, len(reqs))
	for i := range reqs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			recs, res := collect(t, m, ids[i])
			outs[i] = outcome{recs, res}
		}()
	}
	wg.Wait()

	for i, req := range reqs {
		solo := soloRun(t, req)
		if len(outs[i].recs) != len(solo.Epochs) {
			t.Errorf("session %d: streamed %d epochs, solo ran %d", i, len(outs[i].recs), len(solo.Epochs))
			continue
		}
		for e := range solo.Epochs {
			got, want := mustJSON(t, outs[i].recs[e]), mustJSON(t, solo.Epochs[e])
			if !bytes.Equal(got, want) {
				t.Errorf("session %d epoch %d diverged from solo run:\nserved: %s\nsolo:   %s", i, e, got, want)
				break
			}
		}
		if got, want := mustJSON(t, outs[i].res), mustJSON(t, solo); !bytes.Equal(got, want) {
			t.Errorf("session %d final result diverged from solo run", i)
		}
	}
}

// Round-robin scheduling: with one worker, a short session admitted
// alongside a long one finishes while the long one is still mid-run —
// the pool never runs a tenant to completion while others wait.
func TestRoundRobinPreventsStarvation(t *testing.T) {
	m := serve.NewManager(serve.Options{Workers: 1})
	defer m.Shutdown(context.Background())

	long, err := m.Create(quickReq("MID1", 4, 60, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	short, err := m.Create(quickReq("MIX3", 4, 5, 0.6))
	if err != nil {
		t.Fatal(err)
	}

	// Wait for the short session to finish.
	for cursor := 0; ; cursor++ {
		if _, err := m.Next(context.Background(), short.ID, cursor); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	st, err := m.Status(long.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State.Terminal() {
		t.Fatal("long session finished before the short one — scheduling is not round-robin")
	}
	// Fair alternation bounds the long session's progress near the
	// short one's length; far beyond it would mean starvation in the
	// other direction (the short session waited).
	if st.EpochsDone > 20 {
		t.Errorf("long session at %d epochs when the 5-epoch session finished — short tenant starved", st.EpochsDone)
	}
	if err := m.Close(long.ID); err != nil {
		t.Fatal(err)
	}
}

// Close cancels a live session at an epoch boundary: watchers see a
// clean end of stream, the prefix result stays available, and the id
// is gone from the table.
func TestCloseCancelsLiveSession(t *testing.T) {
	m := serve.NewManager(serve.Options{Workers: 1})
	defer m.Shutdown(context.Background())

	st, err := m.Create(quickReq("MID1", 4, 10_000, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	// Let at least one epoch land so the prefix is non-empty.
	if _, err := m.Next(context.Background(), st.ID, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(st.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Status(st.ID); !errors.Is(err, serve.ErrNotFound) {
		t.Errorf("status after close: %v, want ErrNotFound", err)
	}
	if err := m.Close(st.ID); !errors.Is(err, serve.ErrNotFound) {
		t.Errorf("double close: %v, want ErrNotFound", err)
	}
}

// Shutdown with a live context drains naturally: resident sessions run
// to completion, new creates are refused, and results survive.
func TestShutdownDrainsNaturally(t *testing.T) {
	m := serve.NewManager(serve.Options{Workers: 2})
	st, err := m.Create(quickReq("MIX3", 4, 4, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatalf("natural drain returned %v", err)
	}
	if _, err := m.Create(quickReq("MID1", 4, 2, 0.6)); !errors.Is(err, serve.ErrDraining) {
		t.Errorf("create after shutdown: %v, want ErrDraining", err)
	}
	res, err := m.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 4 {
		t.Errorf("drained session has %d epochs, want 4", len(res.Epochs))
	}
}

// Shutdown with an expiring context cancels stragglers at their next
// epoch boundary instead of hanging.
func TestShutdownDeadlineCancels(t *testing.T) {
	m := serve.NewManager(serve.Options{Workers: 1})
	st, err := m.Create(quickReq("MID1", 4, serve.MaxEpochs, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain returned %v, want DeadlineExceeded", err)
	}
	got, err := m.Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != serve.StateCanceled {
		t.Errorf("straggler state %s, want canceled", got.State)
	}
	if _, err := m.Result(st.ID); err != nil {
		t.Errorf("prefix result unavailable after forced drain: %v", err)
	}
}

// The session limit is admission control: creates beyond MaxSessions
// fail typed, and deleting a session frees its slot.
func TestMaxSessionsBackpressure(t *testing.T) {
	m := serve.NewManager(serve.Options{Workers: 1, MaxSessions: 2})
	defer m.Shutdown(context.Background())

	a, err := m.Create(quickReq("MID1", 4, 10_000, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Create(quickReq("MID2", 4, 10_000, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	// Finished sessions stay resident (their results are still being
	// served) — the limit counts them too.
	if _, err := m.Create(quickReq("MIX3", 4, 2, 0.6)); !errors.Is(err, serve.ErrTooManySessions) {
		t.Fatalf("third create: %v, want ErrTooManySessions", err)
	}
	if err := m.Close(a.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(quickReq("MIX3", 4, 2, 0.6)); err != nil {
		t.Errorf("create after freeing a slot: %v", err)
	}
	// Don't leave the 10 000-epoch tenant for the deferred natural
	// drain to wait out.
	if err := m.Close(b.ID); err != nil {
		t.Fatal(err)
	}
}

// SetBudget retargets a live session: a later epoch must run under the
// new cap (the switch is epoch-granular, so we scan the stream for it).
func TestSetBudgetRetargetsLiveSession(t *testing.T) {
	m := serve.NewManager(serve.Options{Workers: 1})
	defer m.Shutdown(context.Background())

	st, err := m.Create(quickReq("MID1", 4, 5_000, 0.8))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetBudget(st.ID, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := m.SetBudget(st.ID, 1.5); !errors.Is(err, runner.ErrInvalidConfig) {
		t.Errorf("budget 1.5 accepted: %v", err)
	}
	deadline := time.After(30 * time.Second)
	for cursor := 0; ; cursor++ {
		select {
		case <-deadline:
			t.Fatal("no epoch picked up the retargeted budget")
		default:
		}
		rec, err := m.Next(context.Background(), st.ID, cursor)
		if err != nil {
			t.Fatalf("stream ended before the retarget landed: %v", err)
		}
		if rec.BudgetW == 0.5*st.PeakW {
			break
		}
	}
	if err := m.Close(st.ID); err != nil {
		t.Fatal(err)
	}
}

// Retargeting a session that already reached a terminal state is a
// typed refusal — the new cap could never take effect, so a 200 would
// lie to the client.
func TestSetBudgetFinishedSession(t *testing.T) {
	m := serve.NewManager(serve.Options{Workers: 1})
	defer m.Shutdown(context.Background())

	st, err := m.Create(quickReq("MIX3", 4, 2, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	collect(t, m, st.ID) // run to completion
	if err := m.SetBudget(st.ID, 0.5); !errors.Is(err, serve.ErrFinished) {
		t.Errorf("retarget of a done session: %v, want ErrFinished", err)
	}
}

// A drain that finished naturally reports nil even when ctx is already
// dead by the time Shutdown checks — only a deadline that actually cut
// a live session short is an error.
func TestShutdownCompletedDrainNotCutShort(t *testing.T) {
	m := serve.NewManager(serve.Options{Workers: 1})
	st, err := m.Create(quickReq("MIX3", 4, 3, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	collect(t, m, st.ID) // terminal before the drain begins
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired, but there is nothing left to cancel
	if err := m.Shutdown(ctx); err != nil {
		t.Errorf("completed drain reported cut short: %v", err)
	}
}

// Recorded sessions expose their captured trace once terminal, and the
// trace replays the run bit-identically — the service-side version of
// the replay round trip.
func TestRecordingRoundTripsThroughReplay(t *testing.T) {
	m := serve.NewManager(serve.Options{Workers: 1})
	defer m.Shutdown(context.Background())

	req := quickReq("MIX2", 4, 5, 0.6)
	req.Record = true
	st, err := m.Create(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteRecording(st.ID, io.Discard); !errors.Is(err, serve.ErrNotFinished) {
		t.Errorf("recording of a live session served: %v", err)
	}
	_, served := collect(t, m, st.ID)

	var buf bytes.Buffer
	if err := m.WriteRecording(st.ID, &buf); err != nil {
		t.Fatal(err)
	}
	// Round-trip: replay the served trace under the same config/policy.
	recording, err := replay.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	plat, err := replay.New(recording)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := req.Config()
	if err != nil {
		t.Fatal(err)
	}
	ses, err := runner.NewSession(cfg, runner.WithPlatform(plat))
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := ses.Step(context.Background()); err != nil {
			if errors.Is(err, runner.ErrDone) {
				break
			}
			t.Fatal(err)
		}
	}
	if got, want := mustJSON(t, ses.Result()), mustJSON(t, served); !bytes.Equal(got, want) {
		t.Error("replayed recording diverged from the served result")
	}

	// A session created without Record has nothing to serve.
	plain, err := m.Create(quickReq("MID1", 4, 2, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	collect(t, m, plain.ID)
	if err := m.WriteRecording(plain.ID, io.Discard); !errors.Is(err, serve.ErrNoRecording) {
		t.Errorf("unrecorded session served a recording: %v", err)
	}
}

// Unknown ids fail typed everywhere.
func TestUnknownSessionTypedErrors(t *testing.T) {
	m := serve.NewManager(serve.Options{Workers: 1})
	defer m.Shutdown(context.Background())

	if _, err := m.Status("nope"); !errors.Is(err, serve.ErrNotFound) {
		t.Errorf("Status: %v", err)
	}
	if _, err := m.Next(context.Background(), "nope", 0); !errors.Is(err, serve.ErrNotFound) {
		t.Errorf("Next: %v", err)
	}
	if _, err := m.Result("nope"); !errors.Is(err, serve.ErrNotFound) {
		t.Errorf("Result: %v", err)
	}
	if err := m.SetBudget("nope", 0.5); !errors.Is(err, serve.ErrNotFound) {
		t.Errorf("SetBudget: %v", err)
	}
	if err := m.WriteRecording("nope", io.Discard); !errors.Is(err, serve.ErrNotFound) {
		t.Errorf("WriteRecording: %v", err)
	}
}

// Result of a live session is refused typed; a negative cursor is a
// config error.
func TestLiveSessionGuards(t *testing.T) {
	m := serve.NewManager(serve.Options{Workers: 1})
	defer m.Shutdown(context.Background())

	st, err := m.Create(quickReq("MID1", 4, 10_000, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Result(st.ID); !errors.Is(err, serve.ErrNotFinished) {
		t.Errorf("live result: %v, want ErrNotFinished", err)
	}
	if _, err := m.Next(context.Background(), st.ID, -1); !errors.Is(err, runner.ErrInvalidConfig) {
		t.Errorf("negative cursor: %v, want ErrInvalidConfig", err)
	}
	// An abandoned watch returns the context's error, not a record.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Next(ctx, st.ID, 1_000_000); !errors.Is(err, context.Canceled) {
		t.Errorf("abandoned watch: %v, want context.Canceled", err)
	}
	if err := m.Close(st.ID); err != nil {
		t.Fatal(err)
	}
}

// The serve-layer validation table: every rejected request carries the
// typed, errors.Is-able runner.ErrInvalidConfig, before any session
// state is created.
func TestCreateValidationTable(t *testing.T) {
	m := serve.NewManager(serve.Options{Workers: 1})
	defer m.Shutdown(context.Background())

	good := quickReq("MIX3", 4, 4, 0.6)
	cases := []struct {
		name   string
		mutate func(*serve.Request)
	}{
		{"unknown mix", func(r *serve.Request) { r.Mix = "NOPE" }},
		{"empty mix", func(r *serve.Request) { r.Mix = "" }},
		{"unknown policy", func(r *serve.Request) { r.Policy = "YOLO" }},
		{"zero budget", func(r *serve.Request) { r.BudgetFrac = 0 }},
		{"negative budget", func(r *serve.Request) { r.BudgetFrac = -0.4 }},
		{"budget above one", func(r *serve.Request) { r.BudgetFrac = 1.01 }},
		{"negative epochs", func(r *serve.Request) { r.Epochs = -1 }},
		{"negative cores", func(r *serve.Request) { r.Cores = -4 }},
		{"cores not multiple of 4", func(r *serve.Request) { r.Cores = 10 }},
		{"negative epoch length", func(r *serve.Request) { r.EpochMs = -1 }},
		{"infinite epoch length", func(r *serve.Request) { r.EpochMs = math.Inf(1) }},
		{"epoch length above limit", func(r *serve.Request) { r.EpochMs = 2 * serve.MaxEpochMs }},
		{"epochs above limit", func(r *serve.Request) { r.Epochs = serve.MaxEpochs + 1 }},
		{"cores above limit", func(r *serve.Request) { r.Cores = 2 * serve.MaxCores }},
		{"epoch cells above limit", func(r *serve.Request) { r.Epochs = 50_000; r.Cores = 64 }},
		{"negative controllers", func(r *serve.Request) { r.Controllers = -2 }},
		{"controllers above limit", func(r *serve.Request) { r.Controllers = serve.MaxControllers + 1 }},
		// 48 passes the absolute limit but splits the 4-core machine's 32
		// banks to zero per controller — must reject, not silently build
		// a bigger machine than asked for.
		{"controllers split banks to none", func(r *serve.Request) { r.Controllers = 48 }},
	}
	for _, tc := range cases {
		req := good
		tc.mutate(&req)
		if _, err := m.Create(req); !errors.Is(err, runner.ErrInvalidConfig) {
			t.Errorf("%s: Create error %v, want ErrInvalidConfig", tc.name, err)
		}
	}
	if got := len(m.List()); got != 0 {
		t.Errorf("%d sessions resident after rejected creates, want 0", got)
	}
}
