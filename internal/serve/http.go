package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/runner"
)

// NewHandler returns the fastcapd HTTP API over m:
//
//	POST   /sessions                 create a session (Request JSON) → Status
//	GET    /sessions                 list resident sessions
//	GET    /sessions/{id}            one session's Status
//	GET    /sessions/{id}/stream     NDJSON per-epoch records, live; ?from=N resumes
//	POST   /sessions/{id}/budget     {"budget_frac": f} → live retarget
//	GET    /sessions/{id}/result     finalized runner.Result (terminal sessions)
//	GET    /sessions/{id}/recording  captured replay.Recording (record=true sessions)
//	DELETE /sessions/{id}            cancel and remove
//	GET    /healthz                  liveness
//	GET    /readyz                   readiness: 200 accepting, 503 draining
//
// and the cluster groups (one global budget arbitrated across member
// sessions at epoch boundaries):
//
//	POST   /clusters                      create a group (ClusterRequest JSON) → ClusterStatus
//	GET    /clusters                      list resident groups
//	GET    /clusters/{id}                 one group's ClusterStatus
//	GET    /clusters/{id}/stream          NDJSON per-epoch member-grant records; ?from=N resumes
//	POST   /clusters/{id}/budget          {"budget_w": w} → live global retarget
//	POST   /clusters/{id}/members         attach a member (ClusterMemberRequest JSON)
//	DELETE /clusters/{id}/members/{mid}   detach a member at the next epoch boundary
//	GET    /clusters/{id}/result          finalized per-member results (terminal groups)
//	DELETE /clusters/{id}                 cancel and remove
//
// Each session stream line is exactly the JSON encoding of a
// runner.EpochRecord — byte-identical to marshaling the same epoch of a
// solo runner.Run — so consumers can diff a service stream against a
// local run. Cluster stream lines are cluster.EpochRecord values.
func NewHandler(m *Manager) http.Handler {
	h := &handler{m: m}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", h.health)
	mux.HandleFunc("GET /readyz", h.ready)
	mux.HandleFunc("POST /sessions", h.create)
	mux.HandleFunc("GET /sessions", h.list)
	mux.HandleFunc("GET /sessions/{id}", h.status)
	mux.HandleFunc("GET /sessions/{id}/stream", h.stream)
	mux.HandleFunc("POST /sessions/{id}/budget", h.budget)
	mux.HandleFunc("GET /sessions/{id}/result", h.result)
	mux.HandleFunc("GET /sessions/{id}/recording", h.recording)
	mux.HandleFunc("DELETE /sessions/{id}", h.del)
	mux.HandleFunc("POST /clusters", h.clusterCreate)
	mux.HandleFunc("GET /clusters", h.clusterList)
	mux.HandleFunc("GET /clusters/{id}", h.clusterStatus)
	mux.HandleFunc("GET /clusters/{id}/stream", h.clusterStream)
	mux.HandleFunc("POST /clusters/{id}/budget", h.clusterBudget)
	mux.HandleFunc("POST /clusters/{id}/members", h.clusterAttach)
	mux.HandleFunc("DELETE /clusters/{id}/members/{mid}", h.clusterDetach)
	mux.HandleFunc("GET /clusters/{id}/result", h.clusterResult)
	mux.HandleFunc("DELETE /clusters/{id}", h.clusterDel)
	return mux
}

type handler struct {
	m *Manager
}

// maxBodyBytes bounds request bodies; session requests are tiny.
const maxBodyBytes = 1 << 20

// writeErr maps typed service errors onto HTTP statuses with a JSON
// error body.
func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound), errors.Is(err, ErrNoRecording):
		code = http.StatusNotFound
	case errors.Is(err, runner.ErrInvalidConfig):
		code = http.StatusBadRequest
	case errors.Is(err, ErrNotFinished), errors.Is(err, ErrFinished):
		code = http.StatusConflict
	case errors.Is(err, ErrTooManySessions):
		code = http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// decodeBody strictly decodes a JSON request body: unknown fields are
// configuration typos, not forward compatibility, at this API's scale.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: request body: %w", runner.ErrInvalidConfig, err)
	}
	return nil
}

func (h *handler) health(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "sessions": h.m.Count()})
}

// ready is the readiness probe, distinct from liveness: a draining
// daemon is alive (/healthz stays 200 — don't restart it) but must stop
// receiving traffic (503 here rotates it out of a balancer, and the
// smoke scripts poll it instead of sleeping).
func (h *handler) ready(w http.ResponseWriter, r *http.Request) {
	if h.m.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "draining": true})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true, "sessions": h.m.Count()})
}

func (h *handler) create(w http.ResponseWriter, r *http.Request) {
	var req Request
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	st, err := h.m.Create(req)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Location", "/sessions/"+st.ID)
	writeJSON(w, http.StatusCreated, st)
}

func (h *handler) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.m.List())
}

func (h *handler) status(w http.ResponseWriter, r *http.Request) {
	st, err := h.m.Status(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// streamHeartbeatLine is the idle keepalive record NDJSON streams emit
// between data lines: exactly {"heartbeat":true}. It is not an epoch
// record — golden comparators skip lines carrying the heartbeat key,
// and a reconnecting consumer's ?from cursor counts data lines only.
type streamHeartbeatLine struct {
	Heartbeat bool `json:"heartbeat"`
}

// streamNDJSON is the shared live-follow loop behind the session and
// cluster stream endpoints: parse ?from, resolve the id via lookup
// *before* committing the 200 and the NDJSON header, then encode one
// record per line until next fails. ?from=N starts mid-stream — a
// reconnecting consumer resumes where it left off, records being stable
// once emitted. When hb > 0 and no record lands at the cursor for that
// long, a {"heartbeat":true} line is emitted and the same cursor is
// retried — idle streams stay visibly alive without a write timeout.
//
// met accounts each stream's fate: heartbeat lines as they are emitted,
// and the termination as either completed (the stream reached its end —
// terminal session, deletion) or client_gone (the consumer hung up or
// the write failed mid-stream, the service-side view of EPIPE).
func streamNDJSON(w http.ResponseWriter, r *http.Request, hb time.Duration, met Metrics, lookup func() error, next func(ctx context.Context, cursor int) (any, error)) {
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, fmt.Errorf("%w: stream cursor %q, want a non-negative integer", runner.ErrInvalidConfig, v))
			return
		}
		from = n
	}
	if err := lookup(); err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(v any) bool {
		if err := enc.Encode(v); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	for cursor := from; ; {
		ctx, cancel := r.Context(), context.CancelFunc(nil)
		if hb > 0 {
			ctx, cancel = context.WithTimeout(ctx, hb)
		}
		rec, err := next(ctx, cursor)
		if cancel != nil {
			cancel()
		}
		if err != nil {
			// An expired heartbeat window with the client still there
			// means idle, not done: emit the keepalive and retry the
			// same cursor.
			if hb > 0 && errors.Is(err, context.DeadlineExceeded) && r.Context().Err() == nil {
				if !emit(streamHeartbeatLine{Heartbeat: true}) {
					met.streamClientGone.Inc()
					return
				}
				met.streamHeartbeats.Inc()
				continue
			}
			// io.EOF: clean end of stream. Context errors: the client left.
			// ErrNotFound: deleted mid-stream. All end the response; HTTP
			// has no status left to change.
			if r.Context().Err() != nil {
				met.streamClientGone.Inc()
			} else {
				met.streamCompleted.Inc()
			}
			return
		}
		if !emit(rec) {
			met.streamClientGone.Inc()
			return
		}
		cursor++
	}
}

// stream writes the session's per-epoch records as NDJSON, following
// the live run until it reaches a terminal state (or the client goes
// away).
func (h *handler) stream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	streamNDJSON(w, r, h.m.streamHeartbeat(), h.m.met,
		func() error { _, err := h.m.Status(id); return err },
		func(ctx context.Context, cursor int) (any, error) { return h.m.Next(ctx, id, cursor) })
}

// budgetRequest is the body of POST /sessions/{id}/budget.
type budgetRequest struct {
	BudgetFrac float64 `json:"budget_frac"`
}

func (h *handler) budget(w http.ResponseWriter, r *http.Request) {
	var req budgetRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if err := h.m.SetBudget(r.PathValue("id"), req.BudgetFrac); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]float64{"budget_frac": req.BudgetFrac})
}

func (h *handler) result(w http.ResponseWriter, r *http.Request) {
	res, err := h.m.Result(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (h *handler) recording(w http.ResponseWriter, r *http.Request) {
	// WriteRecording validates (exists, recorded, terminal) before its
	// first write, so deferring the header keeps error statuses honest
	// while the recording itself streams straight to the connection.
	w.Header().Set("Content-Type", "application/json")
	dw := &headerDeferringWriter{w: w}
	if err := h.m.WriteRecording(r.PathValue("id"), dw); err != nil && !dw.wrote {
		// Mid-stream write failures (client gone, encode error after the
		// first byte) can only be ended, not re-statused — appending an
		// error object onto a partial 200 body would corrupt the JSON.
		writeErr(w, err)
		return
	}
}

// headerDeferringWriter commits the 200 lazily on first write, letting
// WriteRecording's validation errors still pick their own status code.
type headerDeferringWriter struct {
	w     http.ResponseWriter
	wrote bool
}

func (d *headerDeferringWriter) Write(p []byte) (int, error) {
	if !d.wrote {
		d.wrote = true
		d.w.WriteHeader(http.StatusOK)
	}
	return d.w.Write(p)
}

func (h *handler) del(w http.ResponseWriter, r *http.Request) {
	if err := h.m.Close(r.PathValue("id")); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// --- cluster groups ---------------------------------------------------

func (h *handler) clusterCreate(w http.ResponseWriter, r *http.Request) {
	var req ClusterRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	st, err := h.m.CreateCluster(req)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Location", "/clusters/"+st.ID)
	writeJSON(w, http.StatusCreated, st)
}

func (h *handler) clusterList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.m.ListClusters())
}

func (h *handler) clusterStatus(w http.ResponseWriter, r *http.Request) {
	st, err := h.m.ClusterStatus(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// clusterStream follows the group's per-epoch member-grant records as
// NDJSON, the cluster-level twin of the session stream.
func (h *handler) clusterStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	streamNDJSON(w, r, h.m.streamHeartbeat(), h.m.met,
		func() error { _, err := h.m.ClusterStatus(id); return err },
		func(ctx context.Context, cursor int) (any, error) { return h.m.ClusterNext(ctx, id, cursor) })
}

// clusterBudgetRequest is the body of POST /clusters/{id}/budget.
type clusterBudgetRequest struct {
	BudgetW float64 `json:"budget_w"`
}

func (h *handler) clusterBudget(w http.ResponseWriter, r *http.Request) {
	var req clusterBudgetRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if err := h.m.SetClusterBudget(r.PathValue("id"), req.BudgetW); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]float64{"budget_w": req.BudgetW})
}

func (h *handler) clusterAttach(w http.ResponseWriter, r *http.Request) {
	var req ClusterMemberRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	st, err := h.m.AttachMember(r.PathValue("id"), req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (h *handler) clusterDetach(w http.ResponseWriter, r *http.Request) {
	if err := h.m.DetachMember(r.PathValue("id"), r.PathValue("mid")); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (h *handler) clusterResult(w http.ResponseWriter, r *http.Request) {
	res, err := h.m.ClusterResult(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (h *handler) clusterDel(w http.ResponseWriter, r *http.Request) {
	if err := h.m.CloseCluster(r.PathValue("id")); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
