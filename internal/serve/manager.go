// Package serve multiplexes many concurrent capping sessions over one
// process — the multi-tenant layer of the fastcapd service. A Manager
// owns the full session lifecycle (create → scheduled stepping → done /
// failed / canceled → delete) and steps every live session on a bounded
// worker pool in fair round-robin order: each scheduling turn advances a
// session by exactly one control epoch and sends it to the back of the
// queue, so a 10 000-epoch tenant cannot starve a 10-epoch one no matter
// how few workers are configured.
//
// Sessions stay fully isolated — each owns its simulator, policy
// instance and RNGs — so every session's epoch stream and final result
// are bit-identical to running the same configuration alone through
// runner.Run, regardless of worker count or interleaving. That
// determinism is the service's correctness proof (and what the tests
// assert), exactly as runner's parallel experiment engine does.
//
// The HTTP front end over a Manager lives in NewHandler; cmd/fastcapd
// wires both to a listener.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/replay"
	"repro/internal/runner"
)

// State is a session's position in the lifecycle state machine:
//
//	queued ──▶ running ──▶ done
//	  ▲           │   └──▶ failed
//	  └───────────┘   └──▶ canceled
//
// queued→running happens when a pool worker picks the session up;
// running→queued when its epoch completes with more to go. The three
// terminal states are: done (all epochs executed), failed (an epoch
// error, recorded in Status.Error), canceled (closed by the client or a
// drain deadline). Terminal sessions keep their result and stream
// history until deleted.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether no further epochs will execute.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Typed service errors; the HTTP layer maps them to status codes and
// callers test with errors.Is. Configuration problems surface as
// runner.ErrInvalidConfig.
var (
	// ErrNotFound reports an unknown (or already deleted) session id.
	ErrNotFound = errors.New("serve: session not found")
	// ErrDraining rejects creates once Shutdown has begun.
	ErrDraining = errors.New("serve: manager is draining")
	// ErrTooManySessions rejects creates above Options.MaxSessions —
	// the admission-control side of backpressure.
	ErrTooManySessions = errors.New("serve: session limit reached")
	// ErrNotFinished guards results and recordings of live sessions.
	ErrNotFinished = errors.New("serve: session still running")
	// ErrFinished rejects operations that can no longer take effect —
	// retargeting the budget of a session already in a terminal state.
	ErrFinished = errors.New("serve: session already finished")
	// ErrNoRecording reports a session created without Record.
	ErrNoRecording = errors.New("serve: session has no recording")
)

// Options bounds the Manager.
type Options struct {
	// Workers is the scheduler pool size — how many sessions step an
	// epoch simultaneously. Defaults to GOMAXPROCS.
	Workers int
	// MaxSessions bounds resident sessions, live and finished-but-not-
	// deleted alike. Creates beyond it fail with ErrTooManySessions.
	// Defaults to 64.
	MaxSessions int
	// StreamHeartbeat is how long an NDJSON stream endpoint sits idle
	// (no new record at the cursor) before it emits a
	// {"heartbeat":true} keepalive line instead — detecting dead
	// consumers and keeping idle connections alive through proxies
	// without a server write timeout. Defaults to 15s; negative
	// disables heartbeats.
	StreamHeartbeat time.Duration
	// Metrics enables instrumentation (see NewMetrics). nil — the
	// default — disables it entirely: every update site degrades to a
	// nil-receiver no-op. Metrics never influence session output;
	// streams and results stay byte-identical either way.
	Metrics *Metrics
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxSessions <= 0 {
		o.MaxSessions = 64
	}
	if o.StreamHeartbeat == 0 {
		o.StreamHeartbeat = 15 * time.Second
	}
	return o
}

// streamHeartbeat reports the configured keepalive interval (0 when
// disabled) for the HTTP layer's stream loops.
func (m *Manager) streamHeartbeat() time.Duration {
	if m.opt.StreamHeartbeat < 0 {
		return 0
	}
	return m.opt.StreamHeartbeat
}

// Status is the externally visible snapshot of one session.
type Status struct {
	ID     string `json:"id"`
	State  State  `json:"state"`
	Mix    string `json:"mix"`
	Policy string `json:"policy"`
	Cores  int    `json:"cores"`
	// Epochs is the configured run length; EpochsDone how many have
	// completed (and are available to stream).
	Epochs     int `json:"epochs"`
	EpochsDone int `json:"epochs_done"`
	// BudgetFrac is the creation-time budget; live retargets apply from
	// the next epoch but are reported per epoch in the stream, not here.
	BudgetFrac float64 `json:"budget_frac"`
	PeakW      float64 `json:"peak_w"`
	Record     bool    `json:"record"`
	// Error carries the failure (or cancellation) cause for terminal
	// failed/canceled sessions.
	Error string `json:"error,omitempty"`
}

// session is the Manager-side state of one tenant run.
type session struct {
	id  string
	req Request
	cfg runner.Config

	ses    *runner.Session
	rec    *replay.Recorder // non-nil when capture was requested
	ctx    context.Context  // canceled by Close and drain deadlines
	cancel context.CancelFunc

	mu     sync.Mutex
	cond   *sync.Cond           // new record / state change broadcasts
	recs   []runner.EpochRecord // completed epochs, in order
	state  State
	runErr error
	result *runner.Result
	closed bool // deleted: settle instead of stepping when next popped
	// deadlineCut marks that the drain deadline canceled this session
	// while it was live; if it then settles canceled (rather than
	// finishing its in-flight epoch cleanly), the drain was cut short.
	deadlineCut bool
}

// status snapshots the session. Callers must not hold s.mu.
func (s *session) status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	mixName := s.cfg.Mix.Name
	if mixName == "" && s.cfg.Sim.Machine != nil {
		// Placement-only sessions have no Table III mix; label with the
		// machine whose placement defines the workload.
		mixName = s.cfg.Sim.Machine.Name
	}
	st := Status{
		ID:         s.id,
		State:      s.state,
		Mix:        mixName,
		Policy:     s.req.Policy,
		Cores:      s.cfg.Sim.Cores,
		Epochs:     s.cfg.Epochs,
		EpochsDone: len(s.recs),
		BudgetFrac: s.cfg.BudgetFrac,
		PeakW:      s.ses.PeakPowerW(),
		Record:     s.rec != nil,
	}
	if s.runErr != nil {
		st.Error = s.runErr.Error()
	}
	return st
}

// finishLocked moves the session to a terminal state and finalizes the
// runner result (always available, as a prefix, even for failed and
// canceled runs). Callers hold s.mu.
func (s *session) finishLocked(st State, err error) {
	s.state = st
	s.runErr = err
	s.result = s.ses.Result()
	s.cond.Broadcast()
}

// runnable is one schedulable tenant of the manager pool: a session
// (one control epoch per turn) or a cluster group (one cluster epoch —
// every member's control epoch — per turn).
type runnable interface {
	turn(m *Manager)
}

// Manager owns the session table and the scheduler pool. The zero
// value is not usable; call NewManager.
//
// Lock ordering: m.mu before s.mu (or g.mu); neither is held across an
// epoch step, so session execution never blocks the API surface.
type Manager struct {
	opt Options

	mu       sync.Mutex
	cond     *sync.Cond // runnable-queue and drain-progress signal
	sessions map[string]*session
	clusters map[string]*group
	// memberTotal counts the sessions owned by resident cluster groups;
	// they share the MaxSessions admission budget with solo sessions.
	memberTotal int
	runq        []runnable // fair round-robin FIFO of runnable tenants
	nextID      uint64
	nextGID     uint64
	draining    bool
	stopped     bool
	// drainCut records that some session settled canceled because of
	// the drain deadline. Sticky — set at settle time so a client
	// deleting the session afterwards cannot make the drain look clean.
	drainCut bool

	// met holds the pre-resolved instrumentation handles (zero value:
	// disabled). A value copy, so the nil-Options case costs nothing.
	met Metrics

	wg sync.WaitGroup
}

// residentLoadLocked is the admission-control load: solo sessions plus
// every cluster member. Callers hold m.mu.
func (m *Manager) residentLoadLocked() int {
	return len(m.sessions) + m.memberTotal
}

// NewManager starts the scheduler pool and returns an empty manager.
// Call Shutdown to drain it.
func NewManager(o Options) *Manager {
	m := &Manager{
		opt:      o.withDefaults(),
		sessions: make(map[string]*session),
		clusters: make(map[string]*group),
	}
	if o.Metrics != nil {
		m.met = *o.Metrics
		o.Metrics.bind(m)
	}
	m.cond = sync.NewCond(&m.mu)
	for i := 0; i < m.opt.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Create admits a new session: resolve and validate the request, build
// the simulator (and recorder, if asked), and enqueue the session for
// round-robin stepping. Returns the initial Status with the assigned
// id. Configuration problems wrap runner.ErrInvalidConfig; admission
// problems are ErrDraining / ErrTooManySessions.
func (m *Manager) Create(req Request) (Status, error) {
	req = req.withDefaults()
	cfg, err := req.Config()
	if err != nil {
		m.met.rejectInvalid.Inc()
		return Status{}, err
	}

	// Build outside the lock: simulator construction dominates create
	// latency and must not serialize against the whole service.
	var opts []runner.SessionOption
	var recd *replay.Recorder
	if req.Record {
		opts = append(opts, runner.WithPlatformWrap(func(p runner.Platform) runner.Platform {
			recd = replay.NewRecorder(p)
			return recd
		}))
	}
	ses, err := runner.NewSession(cfg, opts...)
	if err != nil {
		m.met.rejectInvalid.Inc()
		return Status{}, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &session{
		req:    req,
		cfg:    cfg,
		ses:    ses,
		rec:    recd,
		ctx:    ctx,
		cancel: cancel,
		state:  StateQueued,
	}
	s.cond = sync.NewCond(&s.mu)

	m.mu.Lock()
	if m.draining || m.stopped {
		m.mu.Unlock()
		cancel()
		m.met.rejectDraining.Inc()
		return Status{}, ErrDraining
	}
	if m.residentLoadLocked() >= m.opt.MaxSessions {
		m.mu.Unlock()
		cancel()
		m.met.rejectLimit.Inc()
		return Status{}, fmt.Errorf("%w (%d resident)", ErrTooManySessions, m.opt.MaxSessions)
	}
	m.nextID++
	s.id = "s" + strconv.FormatUint(m.nextID, 10)
	// Snapshot before workers can see the session (they need m.mu to
	// pop), so the create response always reports the queued state
	// rather than racing the first epoch.
	st := s.status()
	m.sessions[s.id] = s
	m.runq = append(m.runq, s)
	m.cond.Broadcast()
	m.mu.Unlock()
	m.met.sessionsCreated.Inc()
	return st, nil
}

func (m *Manager) get(id string) (*session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return s, nil
}

// Status returns a session's current snapshot.
func (m *Manager) Status(id string) (Status, error) {
	s, err := m.get(id)
	if err != nil {
		return Status{}, err
	}
	return s.status(), nil
}

// Count returns the number of resident sessions, cluster members
// included — the cheap liveness metric (unlike List, it takes no
// per-session locks).
func (m *Manager) Count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.residentLoadLocked()
}

// List snapshots every resident session, ordered by creation.
func (m *Manager) List() []Status {
	m.mu.Lock()
	all := make([]*session, 0, len(m.sessions))
	for _, s := range m.sessions {
		all = append(all, s)
	}
	m.mu.Unlock()
	sort.Slice(all, func(i, j int) bool { return numericID(all[i].id) < numericID(all[j].id) })
	out := make([]Status, len(all))
	for i, s := range all {
		out[i] = s.status()
	}
	return out
}

func numericID(id string) uint64 {
	n, _ := strconv.ParseUint(id[1:], 10, 64)
	return n
}

// SetBudget retargets a live session: from its next epoch the cap is
// f × peak. Delegates to Session.SetBudgetFrac, which is safe against
// a concurrent in-flight epoch and deterministic in when it applies.
// Terminal sessions have no next epoch, so the retarget is refused
// with ErrFinished rather than silently accepted.
func (m *Manager) SetBudget(id string, f float64) error {
	s, err := m.get(id)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state.Terminal() {
		return fmt.Errorf("%w: %q is %s", ErrFinished, id, s.state)
	}
	// A session stepping its final epoch is as good as terminal for a
	// retarget: the cap resolves at each epoch's start, so with no epoch
	// left after the in-flight one the new value could never apply.
	if s.state == StateRunning && len(s.recs) == s.cfg.Epochs-1 {
		return fmt.Errorf("%w: %q is in its final epoch", ErrFinished, id)
	}
	if err := s.ses.SetBudgetFrac(f); err != nil {
		return err
	}
	m.met.retargetSession.Inc()
	return nil
}

// Close deletes a session: live runs are canceled at their next epoch
// boundary, stream watchers are woken and end, and the id is removed
// immediately (subsequent lookups fail with ErrNotFound).
func (m *Manager) Close(id string) error {
	m.mu.Lock()
	s, ok := m.sessions[id]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	delete(m.sessions, id)
	m.mu.Unlock()

	s.cancel()
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	return nil
}

// Next blocks until the epoch record at index cursor is available and
// returns it. It returns io.EOF when the session has reached a
// terminal state (or was deleted) with no record at cursor — the end
// of the stream — and ctx's error if the watch is abandoned first.
// Records are stable once returned; a slow consumer can hold a cursor
// arbitrarily long without blocking the scheduler (backpressure costs
// memory already bounded by the session's configured epoch count, not
// stepping throughput).
func (m *Manager) Next(ctx context.Context, id string, cursor int) (runner.EpochRecord, error) {
	if cursor < 0 {
		return runner.EpochRecord{}, fmt.Errorf("%w: negative stream cursor %d", runner.ErrInvalidConfig, cursor)
	}
	s, err := m.get(id)
	if err != nil {
		return runner.EpochRecord{}, err
	}
	// Wake the cond wait when the watcher gives up.
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()

	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return runner.EpochRecord{}, err
		}
		if cursor < len(s.recs) {
			return s.recs[cursor], nil
		}
		if s.state.Terminal() || s.closed {
			return runner.EpochRecord{}, io.EOF
		}
		s.cond.Wait()
	}
}

// Result returns the finalized run aggregate of a terminal session
// (the completed prefix, for failed or canceled runs). Live sessions
// return ErrNotFinished.
func (m *Manager) Result(id string) (*runner.Result, error) {
	s, err := m.get(id)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.state.Terminal() {
		return nil, fmt.Errorf("%w: %q is %s", ErrNotFinished, id, s.state)
	}
	return s.result, nil
}

// WriteRecording serializes the session's captured trace (JSON, the
// replay.Recording format) to w. Only sessions created with Record
// have one, and only terminal sessions expose it — while stepping
// continues the trace is still growing.
func (m *Manager) WriteRecording(id string, w io.Writer) error {
	s, err := m.get(id)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.rec == nil {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoRecording, id)
	}
	if !s.state.Terminal() {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q is %s", ErrNotFinished, id, s.state)
	}
	rec := s.rec.Recording()
	// Terminal ⇒ no more stepping mutates the recording; serialize
	// outside the lock so a slow writer cannot stall status calls.
	s.mu.Unlock()
	return rec.WriteJSON(w)
}

// Shutdown drains the manager: creates are refused from now on,
// resident sessions keep stepping until every one is terminal, then
// the worker pool exits. If ctx ends first, the remaining sessions are
// canceled — they stop at their next epoch boundary, keeping every
// stream consistent — and Shutdown still waits for the pool to settle.
// Returns ctx's error only when the deadline actually cut a live
// session short; a drain that finished naturally returns nil even if
// ctx happened to expire right as (or after) the last session ended.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()

	stop := context.AfterFunc(ctx, func() {
		m.mu.Lock()
		for _, s := range m.sessions {
			s.mu.Lock()
			if !s.state.Terminal() && !s.closed {
				s.deadlineCut = true
			}
			s.mu.Unlock()
			s.cancel()
		}
		for _, g := range m.clusters {
			g.mu.Lock()
			if !g.state.Terminal() && !g.closed {
				g.deadlineCut = true
			}
			g.mu.Unlock()
			g.cancel()
		}
		m.mu.Unlock()
	})
	defer stop()

	m.mu.Lock()
	for !m.allTerminalLocked() {
		m.cond.Wait()
	}
	m.stopped = true
	m.cond.Broadcast()
	// Judge the drain by its outcome, not by when the deadline fired: a
	// session the deadline canceled mid-final-epoch that still finished
	// cleanly is done, not cut. drainCut is recorded when such a session
	// settles canceled (see stepOnce), not scanned from the table here,
	// so a client deleting the canceled session before this point cannot
	// make the drain look clean.
	cut := m.drainCut
	m.mu.Unlock()

	m.wg.Wait()
	if cut {
		m.met.drainCut.Inc()
		return ctx.Err()
	}
	m.met.drainClean.Inc()
	return nil
}

// Draining reports whether Shutdown has begun (or completed): the
// manager refuses new work but may still be stepping resident sessions
// to completion. The readiness probe (GET /readyz) keys off this — a
// draining daemon is alive but should be rotated out of a balancer.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining || m.stopped
}

// allTerminalLocked reports whether every resident session and cluster
// group is done stepping. Callers hold m.mu (taken before any s.mu or
// g.mu, per the lock order).
func (m *Manager) allTerminalLocked() bool {
	for _, s := range m.sessions {
		s.mu.Lock()
		terminal := s.state.Terminal()
		s.mu.Unlock()
		if !terminal {
			return false
		}
	}
	for _, g := range m.clusters {
		g.mu.Lock()
		terminal := g.state.Terminal()
		g.mu.Unlock()
		if !terminal {
			return false
		}
	}
	return true
}

// worker is one scheduler pool goroutine: pop the head of the fair
// queue, advance that tenant one turn, requeue it at the tail.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		r := m.pop()
		if r == nil {
			return
		}
		r.turn(m)
	}
}

// pop blocks for the next runnable tenant; nil means the manager has
// stopped and the queue is drained.
func (m *Manager) pop() runnable {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if len(m.runq) > 0 {
			r := m.runq[0]
			m.runq[0] = nil // free the slot for GC as the window slides
			m.runq = m.runq[1:]
			return r
		}
		if m.stopped {
			return nil
		}
		m.cond.Wait()
	}
}

// turn implements runnable: a session's scheduling turn is one epoch.
func (s *session) turn(m *Manager) { m.stepOnce(s) }

// stepOnce is one scheduling turn: exactly one epoch of one session.
func (m *Manager) stepOnce(s *session) {
	s.mu.Lock()
	if s.state.Terminal() || s.closed {
		// Deleted (or force-canceled) while waiting in the queue: settle
		// without touching the runner and don't requeue.
		if !s.state.Terminal() {
			s.finishLocked(StateCanceled, context.Canceled)
		}
		s.mu.Unlock()
		m.notify(s.cutShort())
		return
	}
	s.state = StateRunning
	s.mu.Unlock()

	stepStart := time.Now()
	rec, err := s.ses.Step(s.ctx)
	stepDur := time.Since(stepStart)

	s.mu.Lock()
	switch {
	case err == nil:
		m.met.sessionEpochs.Inc()
		m.met.stepSeconds.Observe(stepDur.Seconds())
		s.recs = append(s.recs, rec)
		if len(s.recs) >= s.cfg.Epochs {
			// The runner would report ErrDone on the next Step; finishing
			// here saves every session one empty scheduling turn.
			s.finishLocked(StateDone, nil)
		} else {
			s.state = StateQueued
			s.cond.Broadcast()
		}
	case errors.Is(err, runner.ErrDone):
		s.finishLocked(StateDone, nil)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		s.finishLocked(StateCanceled, err)
	default:
		s.finishLocked(StateFailed, err)
	}
	terminal := s.state.Terminal()
	s.mu.Unlock()

	if terminal {
		m.notify(s.cutShort())
		return
	}
	m.requeue(s)
}

// cutShort reports whether the session's settled outcome means the
// drain deadline cut it short: it ended canceled by the deadline's
// cancel, not by a client delete (a deleted session was abandoned, so
// the rest of the drain still counts as natural). Callers must not
// hold s.mu.
func (s *session) cutShort() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state == StateCanceled && s.deadlineCut && !s.closed
}

// requeue returns a still-live tenant to the tail of the fair queue.
func (m *Manager) requeue(r runnable) {
	m.mu.Lock()
	m.runq = append(m.runq, r)
	m.cond.Broadcast()
	m.mu.Unlock()
}

// notify wakes drain waiters after a session reaches a terminal state,
// recording first whether its outcome cut the drain short.
func (m *Manager) notify(cut bool) {
	m.mu.Lock()
	if cut {
		m.drainCut = true
	}
	m.cond.Broadcast()
	m.mu.Unlock()
}
