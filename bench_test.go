// Repository-level benchmarks: one per table and figure of the FastCap
// paper's evaluation (§IV), plus the algorithm-overhead measurements.
// Each figure bench runs its experiment end-to-end at reduced fidelity
// (fewer cores/epochs than cmd/fastcap-tables) so the whole suite
// completes in minutes; cmd/fastcap-tables regenerates the full-size
// outputs recorded in EXPERIMENTS.md.
package fastcap

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/runner"
	"repro/internal/serve"
	"repro/internal/workload"
)

// benchLab builds a small-fidelity Lab for figure benchmarks.
func benchLab() *experiments.Lab {
	return experiments.NewLab(experiments.Options{
		Cores: 4, Epochs: 4, EpochNs: 5e5, MixesPerClass: 1,
	})
}

// --- Table I: complexity comparison -----------------------------------

func BenchmarkTable1_FastCap16(b *testing.B)   { benchPolicyDecision(b, 16, policy.NewFastCap()) }
func BenchmarkTable1_FastCap64(b *testing.B)   { benchPolicyDecision(b, 64, policy.NewFastCap()) }
func BenchmarkTable1_FastCap256(b *testing.B)  { benchPolicyDecision(b, 256, policy.NewFastCap()) }
func BenchmarkTable1_EqlFreq64(b *testing.B)   { benchPolicyDecision(b, 64, policy.NewEqlFreq()) }
func BenchmarkTable1_EqlPwr64(b *testing.B)    { benchPolicyDecision(b, 64, policy.NewEqlPwr()) }
func BenchmarkTable1_Exhaustive2(b *testing.B) { benchPolicyDecision(b, 2, policy.NewMaxBIPS()) }
func BenchmarkTable1_Exhaustive4(b *testing.B) { benchPolicyDecision(b, 4, policy.NewMaxBIPS()) }

func benchPolicyDecision(b *testing.B, n int, pol policy.Policy) {
	s := experiments.SyntheticSnapshot(n, 0.6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pol.Decide(s); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §IV-B algorithm overhead: 33.5/64.9/133.5 µs at 16/32/64 cores ---

func BenchmarkAlgorithmOverhead16(b *testing.B) { benchPolicyDecision(b, 16, policy.NewFastCap()) }
func BenchmarkAlgorithmOverhead32(b *testing.B) { benchPolicyDecision(b, 32, policy.NewFastCap()) }
func BenchmarkAlgorithmOverhead64(b *testing.B) { benchPolicyDecision(b, 64, policy.NewFastCap()) }

// --- Tables II & III: configuration and workload construction ---------

func BenchmarkTable2_SystemConstruction(b *testing.B) {
	mix, err := workload.MixByName("MIX1")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wl, err := workload.Instantiate(mix, 16)
		if err != nil {
			b.Fatal(err)
		}
		_ = wl
	}
}

func BenchmarkTable3_WorkloadInstantiation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, mix := range workload.TableIII {
			if _, err := workload.Instantiate(mix, 16); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Figures: end-to-end experiment regeneration ----------------------

func BenchmarkFig3_AvgPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchLab().Fig3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4_PowerBreakdownSeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchLab().Fig4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5_BudgetTracking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchLab().Fig5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6_ClassPerformance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchLab().Fig6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7_CoreFrequencySeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchLab().Fig7(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8_MemFrequencySeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchLab().Fig8(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9_PolicyComparison(b *testing.B) {
	// Restrict to one mix per class to keep the bench minutes-scale.
	lab := benchLab()
	mixes := []workload.MixSpec{}
	for _, cl := range []workload.Class{workload.ClassILP, workload.ClassMID, workload.ClassMEM, workload.ClassMIX} {
		mixes = append(mixes, workload.MixesByClass(cl)[0])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.ComparePolicies(mixes, 4, 0.60,
			[]string{"FastCap", "CPU-only", "Freq-Par", "Eql-Pwr"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10_EqlFreq64Cores(b *testing.B) {
	lab := benchLab()
	mixes := workload.MixesByClass(workload.ClassMIX)[:1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.ComparePolicies(mixes, 64, 0.60,
			[]string{"FastCap", "Eql-Freq"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11_MaxBIPS4Cores(b *testing.B) {
	lab := benchLab()
	mixes := workload.MixesByClass(workload.ClassMIX)[:1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.ComparePolicies(mixes, 4, 0.60,
			[]string{"FastCap", "MaxBIPS"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12And13_Configurations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchLab().Fig12And13(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEpochLengthStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := experiments.NewLab(experiments.Options{
			Cores: 4, Epochs: 4, EpochNs: 1e6, MixesPerClass: 1,
		})
		if _, err := lab.EpochLengthStudy(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations: design choices called out in DESIGN.md ----------------

// Binary search vs exhaustive scan over the M memory frequencies.
func BenchmarkAblation_BinarySearch(b *testing.B) {
	benchPolicyDecision(b, 64, policy.NewFastCap())
}

func BenchmarkAblation_ExhaustiveSb(b *testing.B) {
	benchPolicyDecision(b, 64, &policy.FastCap{Guard: true, Exhaustive: true})
}

// Quantization guard on vs off.
func BenchmarkAblation_GuardOn(b *testing.B) {
	benchPolicyDecision(b, 64, &policy.FastCap{Guard: true})
}

func BenchmarkAblation_GuardOff(b *testing.B) {
	benchPolicyDecision(b, 64, &policy.FastCap{Guard: false})
}

// Table I "Numeric Opt" row: the interior-point reference solver.
func BenchmarkTable1_NumericOpt16(b *testing.B) {
	in := experiments.SyntheticSnapshotInputs(16, 0.6)
	opt := core.DefaultNumericOptions()
	for i := 0; i < b.N; i++ {
		if _, err := in.SolveNumeric(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// Shared-L2 contention equilibrium (workload-calibration validation).
func BenchmarkCacheContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CacheContention(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// End-to-end epoch cost: one full simulate-profile-decide-apply cycle.
func BenchmarkEndToEndEpoch(b *testing.B) {
	mix, err := workload.MixByName("MIX3")
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.Options{Cores: 16, Epochs: 1, EpochNs: 1e6}.SimConfig(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := runner.Run(runner.Config{
			Sim: cfg, Mix: mix, BudgetFrac: 0.6, Epochs: 1, Policy: policy.NewFastCap(),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// The same cycle through the streaming session API (NewSession + Step +
// Result). Run alongside BenchmarkEndToEndEpoch: Run is now a thin loop
// over Session.Step, so the two must track each other — any gap is
// session-layer overhead.
func BenchmarkSessionEpoch(b *testing.B) {
	mix, err := workload.MixByName("MIX3")
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.Options{Cores: 16, Epochs: 1, EpochNs: 1e6}.SimConfig(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := runner.NewSession(runner.Config{
			Sim: cfg, Mix: mix, BudgetFrac: 0.6, Epochs: 1, Policy: policy.NewFastCap(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Step(context.Background()); err != nil {
			b.Fatal(err)
		}
		if res := s.Result(); len(res.Epochs) != 1 {
			b.Fatal("short run")
		}
	}
}

// --- Cluster arbitration: per-epoch coordinator overhead --------------

// benchClusterArbitration measures one epoch-boundary rebalance over n
// members — the cluster coordinator's own work, excluding the member
// simulations it schedules. Target: O(members) arithmetic, zero
// steady-state allocations (the scratch is pre-grown by the warm-up
// call), so arbitration cost stays invisible next to even one member's
// epoch.
func benchClusterArbitration(b *testing.B, arb cluster.Arbiter, n int) {
	obs := make([]cluster.Observation, n)
	for i := range obs {
		obs[i] = cluster.Observation{
			PeakW:  120,
			FloorW: 12,
			Weight: 1 + float64(i%3),
			GrantW: 60 + float64(i%17),
			PowerW: 50 + float64(i%23),
			Warm:   true,
			// A mixed fleet: every other member pressed against its cap.
			ThrottleFrac: float64(i%2) * 0.5,
		}
	}
	grants := make([]float64, n)
	budget := 80.0 * float64(n)
	arb.Rebalance(budget, obs, grants) // warm the scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arb.Rebalance(budget, obs, grants)
	}
}

func BenchmarkClusterArbitration8(b *testing.B) {
	for _, name := range []string{"static", "slack", "priority"} {
		arb, _ := cluster.ArbiterByName(name)
		b.Run(name, func(b *testing.B) { benchClusterArbitration(b, arb, 8) })
	}
}

func BenchmarkClusterArbitration64(b *testing.B) {
	for _, name := range []string{"static", "slack", "priority"} {
		arb, _ := cluster.ArbiterByName(name)
		b.Run(name, func(b *testing.B) { benchClusterArbitration(b, arb, 64) })
	}
}

// sloObs builds a fleet with every fourth member holding a throughput
// contract — the demand-estimation path the SLO arbiter adds on top of
// the shared water-fill.
func sloObs(n int) []cluster.Observation {
	obs := make([]cluster.Observation, n)
	for i := range obs {
		obs[i] = cluster.Observation{
			PeakW:  120,
			FloorW: 12,
			Weight: 1 + float64(i%3),
			GrantW: 60 + float64(i%17),
			PowerW: 50 + float64(i%23),
			Instr:  1e6 + float64(i)*1e4,
			BIPS:   2 + float64(i%5)*0.25,
			Warm:   true,
			// A mixed fleet: every other member pressed against its cap.
			ThrottleFrac: float64(i%2) * 0.5,
		}
		if i%4 == 0 {
			obs[i].TargetBIPS = 2.5
		}
	}
	return obs
}

// benchSLOArbitration is benchClusterArbitration for the SLO arbiter on
// a contracted mix; flat (not sub-benchmarked) so the bench.sh snapshot
// schema can anchor on the name.
func benchSLOArbitration(b *testing.B, n int) {
	arb := cluster.NewSLOArbiter()
	obs := sloObs(n)
	grants := make([]float64, n)
	budget := 80.0 * float64(n)
	arb.Rebalance(budget, obs, grants) // warm the scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arb.Rebalance(budget, obs, grants)
	}
}

func BenchmarkSLOArbitration8(b *testing.B)  { benchSLOArbitration(b, 8) }
func BenchmarkSLOArbitration64(b *testing.B) { benchSLOArbitration(b, 64) }

// benchPredictiveArbitration measures the forecasting arbiter on its
// realistic path — id-keyed RebalanceIDs, so the per-member predictor
// map lookup is part of the cost. The warm-up loop runs the model past
// WarmEpochs so the steady state measured is the forecast-driven
// pre-allocation, not the reactive fallback. Flat names so the bench.sh
// snapshot schema can anchor on them.
func benchPredictiveArbitration(b *testing.B, n int) {
	arb := cluster.NewPredictiveArbiter()
	obs := sloObs(n)
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("m%02d", i)
	}
	grants := make([]float64, n)
	budget := 80.0 * float64(n)
	for i := 0; i < arb.WarmEpochs+1; i++ { // warm scratch and model
		arb.RebalanceIDs(budget, ids, obs, grants)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arb.RebalanceIDs(budget, ids, obs, grants)
	}
}

func BenchmarkPredictiveArbitration8(b *testing.B)  { benchPredictiveArbitration(b, 8) }
func BenchmarkPredictiveArbitration64(b *testing.B) { benchPredictiveArbitration(b, 64) }

// --- Instrumented arbitration: the observability tax ------------------

// benchClusterMetrics builds the full per-cluster handle set a serving
// coordinator records into, on a throwaway registry.
func benchClusterMetrics() cluster.Metrics {
	reg := metrics.NewRegistry()
	return cluster.Metrics{
		BudgetW:            reg.Gauge("bench_budget_w", "bench"),
		GrantW:             reg.Gauge("bench_grant_w", "bench"),
		DrawW:              reg.Gauge("bench_draw_w", "bench"),
		SlackW:             reg.Gauge("bench_slack_w", "bench"),
		Members:            reg.Gauge("bench_members", "bench"),
		Epochs:             reg.Counter("bench_epochs_total", "bench"),
		ArbitrationSeconds: reg.Histogram("bench_arbitration_seconds", "bench", metrics.DefLatencyBuckets),
		FillPasses:         reg.Counter("bench_fill_passes_total", "bench"),
		SLOViolations:      reg.Counter("bench_slo_violations_total", "bench"),
		SLOSatisfied:       reg.Gauge("bench_slo_satisfied", "bench"),
		PredictionErrW:     reg.Gauge("bench_prediction_error_w", "bench"),
		PredictionAbsErrW:  reg.Histogram("bench_prediction_abs_error_w", "bench", metrics.DefLatencyBuckets),
	}
}

// instrumentedRebalance is one epoch-boundary rebalance plus exactly
// the metric writes cluster.Coordinator.Step wraps around it: the
// latency histogram, the water-fill pass counter, the epoch counter and
// the budget/grant/draw/slack/member gauges.
func instrumentedRebalance(arb cluster.Arbiter, rep cluster.FillPassReporter, predRep cluster.PredictionErrorReporter, met cluster.Metrics, budget float64, obs []cluster.Observation, grants []float64) {
	start := time.Now()
	arb.Rebalance(budget, obs, grants)
	met.ArbitrationSeconds.Observe(time.Since(start).Seconds())
	if rep != nil {
		met.FillPasses.Add(uint64(rep.FillPasses()))
	}
	if predRep != nil {
		e := predRep.PredictionErrorW()
		met.PredictionErrW.Set(e)
		met.PredictionAbsErrW.Observe(e)
	}
	met.Epochs.Inc()
	var draw, grant float64
	for i := range obs {
		draw += obs[i].PowerW
		grant += grants[i]
	}
	met.BudgetW.Set(budget)
	met.GrantW.Set(grant)
	met.DrawW.Set(draw)
	met.SlackW.Set(grant - draw)
	met.Members.Set(float64(len(obs)))
}

// BenchmarkClusterArbitrationInstrumented is BenchmarkClusterArbitration64
// with the metrics recorded; the delta between the two is the whole
// observability tax on the arbitration hot path. The handles are
// pre-resolved atomics, so the contract is zero additional allocations —
// enforced by TestInstrumentedArbitrationZeroAlloc, not just eyeballed.
func BenchmarkClusterArbitrationInstrumented(b *testing.B) {
	for _, name := range []string{"static", "slack", "priority", "slo", "predictive"} {
		arb, _ := cluster.ArbiterByName(name)
		b.Run(name, func(b *testing.B) {
			const n = 64
			obs := sloObs(n)
			grants := make([]float64, n)
			budget := 80.0 * n
			met := benchClusterMetrics()
			rep, _ := arb.(cluster.FillPassReporter)
			predRep, _ := arb.(cluster.PredictionErrorReporter)
			instrumentedRebalance(arb, rep, predRep, met, budget, obs, grants) // warm the scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				instrumentedRebalance(arb, rep, predRep, met, budget, obs, grants)
			}
		})
	}
}

// TestInstrumentedArbitrationZeroAlloc pins the acceptance bar: the
// steady-state arbitration epoch, metrics included, allocates nothing.
func TestInstrumentedArbitrationZeroAlloc(t *testing.T) {
	for _, name := range []string{"static", "slack", "priority", "slo", "predictive"} {
		arb, _ := cluster.ArbiterByName(name)
		const n = 64
		obs := sloObs(n)
		grants := make([]float64, n)
		met := benchClusterMetrics()
		rep, _ := arb.(cluster.FillPassReporter)
		predRep, _ := arb.(cluster.PredictionErrorReporter)
		instrumentedRebalance(arb, rep, predRep, met, 80*n, obs, grants) // warm the scratch
		if avg := testing.AllocsPerRun(200, func() {
			instrumentedRebalance(arb, rep, predRep, met, 80*n, obs, grants)
		}); avg != 0 {
			t.Errorf("%s: instrumented arbitration allocates %.1f per epoch, want 0", name, avg)
		}
	}
}

// --- Distributed coordination: remote epoch cost ----------------------

// BenchmarkRemoteEpoch runs an 8-member, 2-agent distributed cluster
// over the deterministic in-memory transport and reports ns/epoch for
// the full remote barrier: grant push, an encode/decode wire
// round-trip per frame, each member's simulated control epoch, and the
// report barrier. Compare against BenchmarkClusterArbitration8 (the
// arbitration math alone) and BenchmarkSessionEpoch (one member's
// epoch) to see what the distribution layer itself costs.
func BenchmarkRemoteEpoch(b *testing.B) {
	const (
		members = 8
		agents  = 2
		epochs  = 8
	)
	spec := json.RawMessage(`{"mix":"MIX3","budget_frac":1,"cores":4,"epochs":8,"epoch_ms":0.5}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := dist.NewSimNet(dist.SimConfig{Seed: 1})
		coord, err := dist.NewCoordinator(dist.Config{
			BudgetW: 40, Expect: members, Arbiter: cluster.NewSlackReclaim(),
		})
		if err != nil {
			b.Fatal(err)
		}
		for a := 0; a < agents; a++ {
			name := fmt.Sprintf("agent%d", a)
			specs := make([]dist.MemberSpec, 0, members/agents)
			for m := 0; m < members/agents; m++ {
				specs = append(specs, dist.MemberSpec{ID: fmt.Sprintf("m%d.%d", a, m), Spec: spec})
			}
			ag, err := dist.NewAgent(dist.AgentConfig{
				Name: name, Members: specs, Build: serve.SessionFromSpec,
				Send: net.Sender(name), Clock: net.Clock(name),
			})
			if err != nil {
				b.Fatal(err)
			}
			net.Register(name, ag.Handle, nil)
			ag.Start()
		}
		if err := coord.Run(net); err != nil {
			b.Fatal(err)
		}
		if got := len(coord.Records()); got != epochs {
			b.Fatalf("%d cluster epochs, want %d", got, epochs)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*epochs), "ns/epoch")
}
