// fastcap-loadgen drives a live fastcapd with closed-loop session and
// cluster lifecycles and reports latency percentiles and throughput as
// one machine-readable JSON object.
//
// Each worker loops the full tenant lifecycle against the daemon:
// create a session (POST /sessions), follow its NDJSON stream to the
// end (counting epoch records, skipping heartbeats), retarget the
// budget mid-stream (POST /sessions/{id}/budget), then delete it. With
// -clusters > 0 additional workers drive the same loop through the
// cluster-group API (two members per group). Closed loop means a worker
// never has more than one lifecycle in flight, so -sessions IS the
// daemon's resident-tenant load, making sessions/sec at a given
// concurrency directly comparable across commits — that is the capacity
// row scripts/bench.sh records.
//
//	fastcap-loadgen -base http://127.0.0.1:8080 -sessions 16 -lifecycles 4
//
// The report (stdout, or -json FILE) carries create/stream/retarget/
// delete latency p50/p95/p99 in milliseconds, lifecycle and epoch
// throughput, and an error count. Exit status is 1 when any lifecycle
// failed.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/stats"
)

func main() {
	var (
		base       = flag.String("base", "http://127.0.0.1:8080", "fastcapd base URL")
		sessions   = flag.Int("sessions", 16, "concurrent closed-loop session workers")
		clusters   = flag.Int("clusters", 0, "additional concurrent cluster-group workers (2 members each)")
		lifecycles = flag.Int("lifecycles", 4, "lifecycles per worker")
		mix        = flag.String("mix", "MIX1", "workload mix for every session")
		cores      = flag.Int("cores", 16, "cores per session machine")
		epochs     = flag.Int("epochs", 20, "epochs per session")
		epochMs    = flag.Float64("epoch-ms", 1, "control epoch length in ms")
		budget     = flag.Float64("budget", 0.7, "initial budget fraction")
		retarget   = flag.Float64("retarget", 0.5, "mid-stream retarget budget fraction (0 disables)")
		seed       = flag.Int64("seed", 1, "base simulation seed (each lifecycle offsets it)")
		timeout    = flag.Duration("timeout", 2*time.Minute, "per-stream follow timeout")
		jsonOut    = flag.String("json", "-", "report destination ('-' = stdout)")
	)
	flag.Parse()

	lg := &loadgen{
		base:     strings.TrimRight(*base, "/"),
		mix:      *mix,
		cores:    *cores,
		epochs:   *epochs,
		epochMs:  *epochMs,
		budget:   *budget,
		retarget: *retarget,
		seed:     *seed,
		// One client for control calls (bounded) and one for stream
		// follows (bounded only by -timeout via the request context —
		// a Timeout here would sever long streams).
		ctl:    &http.Client{Timeout: 30 * time.Second},
		follow: &http.Client{Timeout: *timeout},
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *sessions; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for l := 0; l < *lifecycles; l++ {
				lg.sessionLifecycle(w, l)
			}
		}(w)
	}
	for w := 0; w < *clusters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for l := 0; l < *lifecycles; l++ {
				lg.clusterLifecycle(w, l)
			}
		}(w)
	}
	wg.Wait()
	rep := lg.report(*sessions, *clusters, time.Since(start))

	out := os.Stdout
	if *jsonOut != "-" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			log.Fatalf("fastcap-loadgen: %v", err)
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	if err := enc.Encode(rep); err != nil {
		log.Fatalf("fastcap-loadgen: %v", err)
	}
	if rep.Errors > 0 {
		os.Exit(1)
	}
}

// loadgen holds the shared target config and the latency samples the
// workers append under mu.
type loadgen struct {
	base                      string
	mix                       string
	cores, epochs             int
	epochMs, budget, retarget float64
	seed                      int64
	ctl, follow               *http.Client

	mu                                sync.Mutex
	create, stream, retargetL, delete []float64 // seconds
	done, failed, epochsSeen          int
	firstErr                          string
}

func (lg *loadgen) fail(err error) {
	lg.mu.Lock()
	lg.failed++
	if lg.firstErr == "" {
		lg.firstErr = err.Error()
	}
	lg.mu.Unlock()
}

// sessionLifecycle runs one create → stream(+retarget) → delete loop.
func (lg *loadgen) sessionLifecycle(worker, iter int) {
	body := map[string]any{
		"mix":         lg.mix,
		"budget_frac": lg.budget,
		"cores":       lg.cores,
		"epochs":      lg.epochs,
		"epoch_ms":    lg.epochMs,
		"seed":        lg.seed + int64(worker)*1000 + int64(iter),
	}
	t0 := time.Now()
	var st struct {
		ID string `json:"id"`
	}
	if err := lg.post("/sessions", body, &st); err != nil {
		lg.fail(fmt.Errorf("create: %w", err))
		return
	}
	createDur := time.Since(t0)

	n, streamDur, retDur, err := lg.followStream("/sessions/"+st.ID+"/stream",
		"/sessions/"+st.ID+"/budget", map[string]any{"budget_frac": lg.retarget})
	if err != nil {
		lg.fail(fmt.Errorf("stream %s: %w", st.ID, err))
		lg.del("/sessions/" + st.ID)
		return
	}

	t0 = time.Now()
	if err := lg.del("/sessions/" + st.ID); err != nil {
		lg.fail(fmt.Errorf("delete %s: %w", st.ID, err))
		return
	}
	delDur := time.Since(t0)

	lg.record(createDur, streamDur, retDur, delDur, n)
}

// clusterLifecycle is the cluster-group twin: one group, two members.
func (lg *loadgen) clusterLifecycle(worker, iter int) {
	member := func(i int) map[string]any {
		return map[string]any{"session": map[string]any{
			"mix":         lg.mix,
			"budget_frac": lg.budget,
			"cores":       lg.cores,
			"epochs":      lg.epochs,
			"epoch_ms":    lg.epochMs,
			"seed":        lg.seed + int64(worker)*1000 + int64(iter)*2 + int64(i),
		}}
	}
	body := map[string]any{
		"budget_frac": lg.budget,
		"members":     []any{member(0), member(1)},
	}
	t0 := time.Now()
	var st struct {
		ID      string  `json:"id"`
		BudgetW float64 `json:"budget_w"`
	}
	if err := lg.post("/clusters", body, &st); err != nil {
		lg.fail(fmt.Errorf("cluster create: %w", err))
		return
	}
	createDur := time.Since(t0)

	n, streamDur, retDur, err := lg.followStream("/clusters/"+st.ID+"/stream",
		"/clusters/"+st.ID+"/budget",
		map[string]any{"budget_w": st.BudgetW * lg.retarget / lg.budget})
	if err != nil {
		lg.fail(fmt.Errorf("cluster stream %s: %w", st.ID, err))
		lg.del("/clusters/" + st.ID)
		return
	}

	t0 = time.Now()
	if err := lg.del("/clusters/" + st.ID); err != nil {
		lg.fail(fmt.Errorf("cluster delete %s: %w", st.ID, err))
		return
	}
	delDur := time.Since(t0)

	lg.record(createDur, streamDur, retDur, delDur, n)
}

// followStream reads an NDJSON epoch stream to its end, firing the
// retarget POST once after the first data line. It returns the data
// line count, the full stream duration and the retarget latency (0 when
// retargeting is disabled).
func (lg *loadgen) followStream(streamPath, budgetPath string, retargetBody map[string]any) (n int, streamDur, retDur time.Duration, err error) {
	t0 := time.Now()
	resp, err := lg.follow.Get(lg.base + streamPath)
	if err != nil {
		return 0, 0, 0, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, 0, fmt.Errorf("stream status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	retargeted := lg.retarget <= 0
	for sc.Scan() {
		if bytes.Contains(sc.Bytes(), []byte(`"heartbeat"`)) {
			continue
		}
		n++
		if !retargeted {
			retargeted = true
			tr := time.Now()
			if err := lg.post(budgetPath, retargetBody, nil); err != nil {
				return n, 0, 0, fmt.Errorf("retarget: %w", err)
			}
			retDur = time.Since(tr)
		}
	}
	if err := sc.Err(); err != nil {
		return n, 0, 0, err
	}
	if n == 0 {
		return 0, 0, 0, fmt.Errorf("stream ended with no epoch records")
	}
	return n, time.Since(t0), retDur, nil
}

func (lg *loadgen) record(create, stream, ret, del time.Duration, epochs int) {
	lg.mu.Lock()
	lg.create = append(lg.create, create.Seconds())
	lg.stream = append(lg.stream, stream.Seconds())
	if ret > 0 {
		lg.retargetL = append(lg.retargetL, ret.Seconds())
	}
	lg.delete = append(lg.delete, del.Seconds())
	lg.done++
	lg.epochsSeen += epochs
	lg.mu.Unlock()
}

func (lg *loadgen) post(path string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := lg.ctl.Post(lg.base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("POST %s: status %d: %s", path, resp.StatusCode, bytes.TrimSpace(msg))
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (lg *loadgen) del(path string) error {
	req, err := http.NewRequest(http.MethodDelete, lg.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := lg.ctl.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("DELETE %s: status %d", path, resp.StatusCode)
	}
	return nil
}

// LatencySummary is one operation's latency distribution, milliseconds.
type LatencySummary struct {
	N    int     `json:"n"`
	P50  float64 `json:"p50_ms"`
	P95  float64 `json:"p95_ms"`
	P99  float64 `json:"p99_ms"`
	Mean float64 `json:"mean_ms"`
	Max  float64 `json:"max_ms"`
}

// summarize returns nil for a class with no samples: an all-zero block
// would be indistinguishable from genuinely instant operations (e.g.
// when -retarget 0 disables retargets entirely), so empty classes are
// omitted from the report instead.
func summarize(xs []float64) *LatencySummary {
	if len(xs) == 0 {
		return nil
	}
	var s stats.Streaming
	for _, x := range xs {
		s.Observe(x * 1e3)
	}
	ms := make([]float64, len(xs))
	for i, x := range xs {
		ms[i] = x * 1e3
	}
	pct := stats.Percentiles(ms, 50, 95, 99)
	return &LatencySummary{
		N:    len(xs),
		P50:  pct[0],
		P95:  pct[1],
		P99:  pct[2],
		Mean: s.Mean(),
		Max:  s.Max(),
	}
}

// Report is the loadgen's machine-readable result.
type Report struct {
	Base           string         `json:"base"`
	Concurrency    int            `json:"concurrency"`
	ClusterWorkers int            `json:"cluster_workers,omitempty"`
	Lifecycles     int            `json:"lifecycles"`
	Errors         int            `json:"errors"`
	FirstError     string         `json:"first_error,omitempty"`
	ElapsedSec     float64        `json:"elapsed_sec"`
	SessionsPerSec float64        `json:"sessions_per_sec"`
	Epochs       int     `json:"epochs"`
	EpochsPerSec float64 `json:"epochs_per_sec"`
	// Latency blocks are omitted (not zeroed) for classes that recorded
	// no samples, e.g. retarget when -retarget 0 disables it.
	Create   *LatencySummary `json:"create,omitempty"`
	Stream   *LatencySummary `json:"stream,omitempty"`
	Retarget *LatencySummary `json:"retarget,omitempty"`
	Delete   *LatencySummary `json:"delete,omitempty"`
}

func (lg *loadgen) report(sessions, clusters int, elapsed time.Duration) Report {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	sec := elapsed.Seconds()
	return Report{
		Base:           lg.base,
		Concurrency:    sessions,
		ClusterWorkers: clusters,
		Lifecycles:     lg.done,
		Errors:         lg.failed,
		FirstError:     lg.firstErr,
		ElapsedSec:     sec,
		SessionsPerSec: float64(lg.done) / sec,
		Epochs:         lg.epochsSeen,
		EpochsPerSec:   float64(lg.epochsSeen) / sec,
		Create:         summarize(lg.create),
		Stream:         summarize(lg.stream),
		Retarget:       summarize(lg.retargetL),
		Delete:         summarize(lg.delete),
	}
}
