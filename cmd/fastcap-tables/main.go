// fastcap-tables regenerates every table and figure of the FastCap
// paper's evaluation section as text tables (and CSV series for the
// time-series figures). See DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded paper-vs-measured comparisons.
//
// Examples:
//
//	fastcap-tables -fig 3           # just Figure 3
//	fastcap-tables -all             # everything (several minutes)
//	fastcap-tables -all -epochs 40 -epoch-ms 5 -out results/  # high fidelity
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
	"repro/internal/memsim"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	var (
		all      = flag.Bool("all", false, "regenerate every table and figure")
		figs     = flag.String("fig", "", "comma-separated figure list, e.g. 3,5,9 (12 implies 13)")
		tables   = flag.String("table", "", "comma-separated table list: 1,2,3")
		epochStu = flag.Bool("epochs-study", false, "epoch-length sensitivity study")
		overhead = flag.Bool("overhead", false, "algorithm overhead measurement")
		validate = flag.Bool("validate", false, "model-accuracy validation (power <10%, Eq.1 response)")
		ablation = flag.Bool("ablation", false, "quantization-guard ablation")
		hetero   = flag.Bool("hetero", false, "heterogeneous-machine sweep (big.LITTLE and binned cores)")
		clusterS = flag.Bool("cluster", false, "cluster-coordination sweep (budget arbitration across machines)")
		sloS     = flag.Bool("slo", false, "SLO arbitration sweep (throughput contracts on a churning fleet)")
		predS    = flag.Bool("predictive", false, "predictive arbitration sweep (forecast-driven hand-off on phase changes)")
		cacheCmp = flag.Bool("cache", false, "shared-L2 contention model vs Table III calibration")
		cores    = flag.Int("cores", 16, "default core count")
		epochs   = flag.Int("epochs", 20, "epochs per run")
		epochMs  = flag.Float64("epoch-ms", 1.0, "epoch length in ms (paper: 5)")
		mixesPC  = flag.Int("mixes-per-class", 2, "Table III mixes per class in Fig 12/13")
		outDir   = flag.String("out", "", "also write CSV outputs to this directory")
		quiet    = flag.Bool("q", false, "suppress progress lines")
		seed     = flag.Int64("seed", 1, "simulation seed")
		workers  = flag.Int("workers", 0, "concurrent runs per sweep (0 = GOMAXPROCS, 1 = serial; output is identical)")
	)
	flag.Parse()

	opt := experiments.Options{
		Cores:         *cores,
		Epochs:        *epochs,
		EpochNs:       *epochMs * 1e6,
		MixesPerClass: *mixesPC,
		Seed:          *seed,
		Workers:       *workers,
	}
	lab := experiments.NewLab(opt)
	if !*quiet {
		lab.Progress = func(msg string) { fmt.Fprintln(os.Stderr, "  "+msg) }
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*figs, ",") {
		if f != "" {
			want["fig"+f] = true
		}
	}
	for _, tb := range strings.Split(*tables, ",") {
		if tb != "" {
			want["table"+tb] = true
		}
	}
	if *all {
		for _, k := range []string{"table1", "table2", "table3", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "overhead", "epochs-study", "validate", "ablation", "cache", "hetero", "cluster", "slo", "predictive"} {
			want[k] = true
		}
	}
	if *overhead {
		want["overhead"] = true
	}
	if *validate {
		want["validate"] = true
	}
	if *ablation {
		want["ablation"] = true
	}
	if *hetero {
		want["hetero"] = true
	}
	if *clusterS {
		want["cluster"] = true
	}
	if *sloS {
		want["slo"] = true
	}
	if *predS {
		want["predictive"] = true
	}
	if *cacheCmp {
		want["cache"] = true
	}
	if *epochStu {
		want["epochs-study"] = true
	}
	if len(want) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	g := &generator{lab: lab, outDir: *outDir}
	steps := []struct {
		key string
		fn  func() error
	}{
		{"table1", g.table1},
		{"table2", g.table2},
		{"table3", g.table3},
		{"fig3", g.fig3},
		{"fig4", g.fig4},
		{"fig5", g.fig5},
		{"fig6", g.fig6},
		{"fig7", g.fig7},
		{"fig8", g.fig8},
		{"fig9", g.fig9},
		{"fig10", g.fig10},
		{"fig11", g.fig11},
		{"fig12", g.fig1213},
		{"fig13", g.fig1213},
		{"overhead", g.overhead},
		{"epochs-study", g.epochStudy},
		{"validate", g.validate},
		{"ablation", g.ablation},
		{"cache", g.cacheContention},
		{"hetero", g.hetero},
		{"cluster", g.cluster},
		{"slo", g.slo},
		{"predictive", g.predictive},
	}
	done := map[string]bool{}
	for _, s := range steps {
		if !want[s.key] || done[s.key] {
			continue
		}
		if s.key == "fig12" || s.key == "fig13" {
			done["fig12"], done["fig13"] = true, true
		}
		if err := s.fn(); err != nil {
			fmt.Fprintf(os.Stderr, "fastcap-tables: %s: %v\n", s.key, err)
			os.Exit(1)
		}
	}
}

type generator struct {
	lab    *experiments.Lab
	outDir string
}

// writeCSV saves rows under the output directory if one was requested.
func (g *generator) writeCSV(name string, headers []string, rows [][]string) error {
	if g.outDir == "" {
		return nil
	}
	if err := os.MkdirAll(g.outDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(g.outDir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return report.WriteCSV(f, headers, rows)
}

func (g *generator) seriesTable(title string, series []experiments.Series, yFmt int) *report.Table {
	headers := []string{"epoch"}
	for _, s := range series {
		headers = append(headers, s.Name)
	}
	tbl := &report.Table{Title: title, Headers: headers}
	if len(series) == 0 {
		return tbl
	}
	for i := range series[0].X {
		row := []string{report.F(series[0].X[i], 0)}
		for _, s := range series {
			if i < len(s.Y) {
				row = append(row, report.F(s.Y[i], yFmt))
			} else {
				row = append(row, "")
			}
		}
		tbl.AddRow(row...)
	}
	return tbl
}

func (g *generator) emitSeries(name, title string, series []experiments.Series, yFmt int) error {
	if err := g.seriesTable(title, series, yFmt).Render(os.Stdout); err != nil {
		return err
	}
	if g.outDir == "" {
		return nil
	}
	var rows [][]string
	for i := range series[0].X {
		row := []string{report.F(series[0].X[i], 0)}
		for _, s := range series {
			if i < len(s.Y) {
				row = append(row, report.F(s.Y[i], 5))
			} else {
				row = append(row, "")
			}
		}
		rows = append(rows, row)
	}
	headers := []string{"epoch"}
	for _, s := range series {
		headers = append(headers, s.Name)
	}
	return g.writeCSV(name, headers, rows)
}

func (g *generator) table1() error {
	rows, err := experiments.Table1(200)
	if err != nil {
		return err
	}
	tbl := &report.Table{
		Title:   "Table I — measured decision latency (complexity comparison)",
		Headers: []string{"method", "cores", "mean µs", "complexity"},
	}
	for _, r := range rows {
		tbl.AddRow(r.Method, fmt.Sprint(r.Cores), report.F(r.MeanUs, 1), r.Note)
	}
	return tbl.Render(os.Stdout)
}

func (g *generator) table2() error {
	t := memsim.DDR3()
	tbl := &report.Table{
		Title:   "Table II — main system settings (encoded configuration)",
		Headers: []string{"feature", "value"},
	}
	tbl.AddRow("CPU cores", "N in-order (or idealized OoO), 2.2–4.0 GHz, 10 steps")
	tbl.AddRow("Core voltage", "0.65–1.2 V, proportional to frequency")
	tbl.AddRow("L2 (shared)", "30 CPU-cycle hit = 7.5 ns, fixed domain")
	tbl.AddRow("Memory bus", "200–800 MHz in 66 MHz steps")
	tbl.AddRow("tRCD/tRP/tCL", fmt.Sprintf("%.0f/%.0f/%.0f ns", t.TRCD, t.TRP, t.TCL))
	tbl.AddRow("Transfer", fmt.Sprintf("%.0f bus cycles per 64 B line", t.BusCycles))
	tbl.AddRow("Channels", "4 (≤32 cores) / 8 (64 cores), 8 banks each")
	tbl.AddRow("Other power", "10 W frequency-independent (Ps)")
	return tbl.Render(os.Stdout)
}

func (g *generator) table3() error {
	tbl := &report.Table{
		Title:   "Table III — workloads (instantiated at N=16)",
		Headers: []string{"name", "MPKI", "WPKI", "applications"},
	}
	var rows [][]string
	for _, mix := range workload.TableIII {
		wl, err := workload.Instantiate(mix, 16)
		if err != nil {
			return err
		}
		apps := strings.Join([]string{mix.Apps[0], mix.Apps[1], mix.Apps[2], mix.Apps[3]}, " ")
		tbl.AddRow(mix.Name, report.F(wl.MeanMPKI(), 2), report.F(wl.MeanWPKI(), 2), apps)
		rows = append(rows, []string{mix.Name, report.F(wl.MeanMPKI(), 2), report.F(wl.MeanWPKI(), 2), apps})
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	return g.writeCSV("table3.csv", []string{"name", "mpki", "wpki", "apps"}, rows)
}

func (g *generator) fig3() error {
	bars, err := g.lab.Fig3()
	if err != nil {
		return err
	}
	tbl := &report.Table{
		Title:   "Fig. 3 — FastCap average power / peak, budget 60%",
		Headers: []string{"workload", "power/peak"},
	}
	var rows [][]string
	for _, b := range bars {
		tbl.AddRow(b.Mix, report.F(b.AvgNorm, 3))
		rows = append(rows, []string{b.Mix, report.F(b.AvgNorm, 5)})
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	return g.writeCSV("fig3.csv", []string{"workload", "power_over_peak"}, rows)
}

func (g *generator) fig4() error {
	series, err := g.lab.Fig4()
	if err != nil {
		return err
	}
	return g.emitSeries("fig4.csv", "Fig. 4 — core/memory power split over time, MIX3 @ 60%", series, 3)
}

func (g *generator) fig5() error {
	series, err := g.lab.Fig5()
	if err != nil {
		return err
	}
	return g.emitSeries("fig5.csv", "Fig. 5 — normalized power over time, MEM3, three budgets", series, 3)
}

func (g *generator) fig6() error {
	rows, err := g.lab.Fig6()
	if err != nil {
		return err
	}
	tbl := &report.Table{
		Title:   "Fig. 6 — normalized performance per class and budget (1.0 = no loss)",
		Headers: []string{"class", "budget", "avg", "worst", "Jain"},
	}
	var csv [][]string
	for _, r := range rows {
		tbl.AddRow(r.Class, report.Pct(r.Budget), report.F(r.Avg, 3), report.F(r.Worst, 3), report.F(r.Jain, 3))
		csv = append(csv, []string{r.Class, report.F(r.Budget, 2), report.F(r.Avg, 5), report.F(r.Worst, 5), report.F(r.Jain, 5)})
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	return g.writeCSV("fig6.csv", []string{"class", "budget", "avg", "worst", "jain"}, csv)
}

func (g *generator) fig7() error {
	series, err := g.lab.Fig7()
	if err != nil {
		return err
	}
	return g.emitSeries("fig7.csv", "Fig. 7 — core frequency (GHz) over time, budget 80%", series, 2)
}

func (g *generator) fig8() error {
	series, err := g.lab.Fig8()
	if err != nil {
		return err
	}
	return g.emitSeries("fig8.csv", "Fig. 8 — memory frequency (MHz) over time, budget 80%", series, 0)
}

func (g *generator) policyTable(title, csvName string, rows []experiments.PolicyPerf) error {
	tbl := &report.Table{
		Title:   title,
		Headers: []string{"workload", "policy", "avg", "worst", "Jain"},
	}
	var csvRows [][]string
	for _, r := range rows {
		tbl.AddRow(r.Workload, r.Policy, report.F(r.Avg, 3), report.F(r.Worst, 3), report.F(r.Jain, 3))
		csvRows = append(csvRows, []string{r.Workload, r.Policy, report.F(r.Avg, 5), report.F(r.Worst, 5), report.F(r.Jain, 5)})
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	return g.writeCSV(csvName, []string{"workload", "policy", "avg", "worst", "jain"}, csvRows)
}

func (g *generator) fig9() error {
	rows, err := g.lab.Fig9()
	if err != nil {
		return err
	}
	return g.policyTable("Fig. 9 — FastCap vs CPU-only* vs Freq-Par* vs Eql-Pwr, budget 60%", "fig9.csv", rows)
}

func (g *generator) fig10() error {
	rows, err := g.lab.Fig10()
	if err != nil {
		return err
	}
	return g.policyTable("Fig. 10 — FastCap vs Eql-Freq, MIX on 64 cores, budget 60%", "fig10.csv", rows)
}

func (g *generator) fig11() error {
	rows, err := g.lab.Fig11()
	if err != nil {
		return err
	}
	return g.policyTable("Fig. 11 — FastCap vs MaxBIPS, MIX on 4 cores, budget 60%", "fig11.csv", rows)
}

func (g *generator) fig1213() error {
	rows, err := g.lab.Fig12And13()
	if err != nil {
		return err
	}
	tbl := &report.Table{
		Title:   "Figs. 12 & 13 — FastCap across configurations, budget 60%",
		Headers: []string{"config", "class", "avg pwr/peak", "max pwr/peak", "avg perf", "worst perf"},
	}
	var csvRows [][]string
	for _, r := range rows {
		tbl.AddRow(r.Config, r.Class,
			report.F(r.AvgPowerNorm, 3), report.F(r.MaxPowerNorm, 3),
			report.F(r.AvgPerf, 3), report.F(r.WorstPerf, 3))
		csvRows = append(csvRows, []string{r.Config, r.Class,
			report.F(r.AvgPowerNorm, 5), report.F(r.MaxPowerNorm, 5),
			report.F(r.AvgPerf, 5), report.F(r.WorstPerf, 5)})
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	return g.writeCSV("fig12_13.csv",
		[]string{"config", "class", "avg_pwr", "max_pwr", "avg_perf", "worst_perf"}, csvRows)
}

func (g *generator) overhead() error {
	rows, err := experiments.Overhead(2000)
	if err != nil {
		return err
	}
	tbl := &report.Table{
		Title:   "Algorithm overhead (paper §IV-B: 33.5/64.9/133.5 µs at 16/32/64 cores)",
		Headers: []string{"cores", "mean µs", "% of 5 ms epoch"},
	}
	for _, r := range rows {
		tbl.AddRow(fmt.Sprint(r.Cores), report.F(r.MeanUs, 1), report.F(r.PctOfEpoch, 2))
	}
	return tbl.Render(os.Stdout)
}

func (g *generator) validate() error {
	rows, err := g.lab.ValidateModels()
	if err != nil {
		return err
	}
	tbl := &report.Table{
		Title:   "Model validation (paper §III-A: power model error < 10%)",
		Headers: []string{"mix", "mean pwr err %", "max pwr err %", "mean Eq.1 resp err %"},
	}
	for _, r := range rows {
		tbl.AddRow(r.Mix, report.F(r.MeanPowerErrPct, 1), report.F(r.MaxPowerErrPct, 1), report.F(r.MeanRespErrPct, 1))
	}
	return tbl.Render(os.Stdout)
}

func (g *generator) cacheContention() error {
	rows, err := experiments.CacheContention(nil)
	if err != nil {
		return err
	}
	tbl := &report.Table{
		Title:   "Shared-L2 contention model vs Table III calibration (applu story)",
		Headers: []string{"mix", "app", "L2 share", "model MPKI", "calibrated MPKI"},
	}
	for _, r := range rows {
		tbl.AddRow(r.Mix, r.App, report.F(r.ShareFrac, 3), report.F(r.ModelMPKI, 2), report.F(r.CalibratedMPKI, 2))
	}
	return tbl.Render(os.Stdout)
}

func (g *generator) ablation() error {
	rows, err := g.lab.AblationGuard()
	if err != nil {
		return err
	}
	tbl := &report.Table{
		Title:   "Ablation — post-quantization budget guard, budget 60%",
		Headers: []string{"mix", "variant", "avg pwr/peak", "max pwr/peak", "over-budget epochs %", "avg perf", "worst perf"},
	}
	for _, r := range rows {
		tbl.AddRow(r.Mix, r.Variant, report.F(r.AvgPowerNorm, 3), report.F(r.MaxPowerNorm, 3),
			report.F(r.OverBudgetEpochsPct, 0), report.F(r.AvgPerf, 3), report.F(r.WorstPerf, 3))
	}
	return tbl.Render(os.Stdout)
}

func (g *generator) hetero() error {
	rows, err := g.lab.Heterogeneity()
	if err != nil {
		return err
	}
	tbl := &report.Table{
		Title:   "Heterogeneous machines — FastCap vs all policies, budget 60%",
		Headers: []string{"machine", "workload", "policy", "avg pwr/peak", "max pwr/peak", "avg perf", "worst perf", "Jain"},
	}
	var csvRows [][]string
	for _, r := range rows {
		tbl.AddRow(r.Machine, r.Mix, r.Policy,
			report.F(r.AvgPowerNorm, 3), report.F(r.MaxPowerNorm, 3),
			report.F(r.AvgPerf, 3), report.F(r.WorstPerf, 3), report.F(r.Jain, 3))
		csvRows = append(csvRows, []string{r.Machine, r.Mix, r.Policy,
			report.F(r.AvgPowerNorm, 5), report.F(r.MaxPowerNorm, 5),
			report.F(r.AvgPerf, 5), report.F(r.WorstPerf, 5), report.F(r.Jain, 5)})
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	return g.writeCSV("hetero.csv",
		[]string{"machine", "workload", "policy", "avg_pwr", "max_pwr", "avg_perf", "worst_perf", "jain"}, csvRows)
}

func (g *generator) cluster() error {
	rows, err := g.lab.ClusterSweep()
	if err != nil {
		return err
	}
	tbl := &report.Table{
		Title:   "Cluster coordination — global budget arbitration across machines",
		Headers: []string{"arbiter", "budget", "member", "workload", "machine", "avg grant W", "avg power W", "avg slack W", "grant first→last W", "Ginstr", "norm perf"},
	}
	var csvRows [][]string
	for _, r := range rows {
		shift := fmt.Sprintf("%s → %s", report.F(r.FirstGrantW, 1), report.F(r.LastGrantW, 1))
		tbl.AddRow(r.Arbiter, report.Pct(r.BudgetFrac), r.Member, r.Mix, r.Machine,
			report.F(r.AvgGrantW, 1), report.F(r.AvgPowerW, 1), report.F(r.AvgSlackW, 1),
			shift, report.F(r.GInstr, 3), report.F(r.NormPerf, 3))
		csvRows = append(csvRows, []string{r.Arbiter, report.F(r.BudgetFrac, 2), r.Member, r.Mix, r.Machine,
			report.F(r.AvgGrantW, 5), report.F(r.AvgPowerW, 5), report.F(r.AvgSlackW, 5),
			report.F(r.FirstGrantW, 5), report.F(r.LastGrantW, 5), report.F(r.GInstr, 5), report.F(r.NormPerf, 5)})
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	return g.writeCSV("cluster.csv",
		[]string{"arbiter", "budget", "member", "workload", "machine", "avg_grant_w", "avg_power_w", "avg_slack_w", "first_grant_w", "last_grant_w", "ginstr", "norm_perf"}, csvRows)
}

func (g *generator) slo() error {
	rows, err := g.lab.SLOSweep()
	if err != nil {
		return err
	}
	tbl := &report.Table{
		Title:   "SLO arbitration — throughput contracts on a churning fleet",
		Headers: []string{"arbiter", "budget", "member", "workload", "target BIPS", "avg BIPS", "satisfied", "violations", "avg grant W", "avg slack W"},
	}
	var csvRows [][]string
	for _, r := range rows {
		target := "-"
		if r.TargetBIPS > 0 {
			target = report.F(r.TargetBIPS, 3)
		}
		tbl.AddRow(r.Arbiter, report.Pct(r.BudgetFrac), r.Member, r.Mix,
			target, report.F(r.AvgBIPS, 3), report.Pct(r.SatisfiedFrac),
			fmt.Sprint(r.Violations), report.F(r.AvgGrantW, 1), report.F(r.AvgSlackW, 1))
		csvRows = append(csvRows, []string{r.Arbiter, report.F(r.BudgetFrac, 2), r.Member, r.Mix,
			report.F(r.TargetBIPS, 5), report.F(r.AvgBIPS, 5), report.F(r.SatisfiedFrac, 5),
			fmt.Sprint(r.Violations), report.F(r.AvgGrantW, 5), report.F(r.AvgSlackW, 5)})
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	return g.writeCSV("slo.csv",
		[]string{"arbiter", "budget", "member", "workload", "target_bips", "avg_bips", "satisfied_frac", "violations", "avg_grant_w", "avg_slack_w"}, csvRows)
}

func (g *generator) predictive() error {
	rows, err := g.lab.PredictiveSweep()
	if err != nil {
		return err
	}
	tbl := &report.Table{
		Title:   "Predictive arbitration — forecast-driven hand-off on phase changes",
		Headers: []string{"scenario", "arbiter", "budget", "member", "workload", "reclaim epochs", "overshoot W·e", "avg grant W", "avg power W", "ginstr", "violations"},
	}
	var csvRows [][]string
	for _, r := range rows {
		tbl.AddRow(r.Scenario, r.Arbiter, report.Pct(r.BudgetFrac), r.Member, r.Mix,
			fmt.Sprint(r.TimeToReclaim), report.F(r.OvershootWEpochs, 1),
			report.F(r.AvgGrantW, 1), report.F(r.AvgPowerW, 1), report.F(r.GInstr, 2),
			fmt.Sprint(r.FloorViolations+r.ClampViolations))
		csvRows = append(csvRows, []string{r.Scenario, r.Arbiter, report.F(r.BudgetFrac, 3), r.Member, r.Mix,
			fmt.Sprint(r.TimeToReclaim), report.F(r.OvershootWEpochs, 5),
			report.F(r.AvgGrantW, 5), report.F(r.AvgPowerW, 5), report.F(r.GInstr, 5),
			fmt.Sprint(r.FloorViolations), fmt.Sprint(r.ClampViolations)})
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	return g.writeCSV("predictive.csv",
		[]string{"scenario", "arbiter", "budget", "member", "workload", "reclaim_epochs", "overshoot_w_epochs", "avg_grant_w", "avg_power_w", "ginstr", "floor_violations", "clamp_violations"}, csvRows)
}

func (g *generator) epochStudy() error {
	rows, err := g.lab.EpochLengthStudy()
	if err != nil {
		return err
	}
	tbl := &report.Table{
		Title:   "Epoch length study (paper §IV-B: 5/10/20 ms are equivalent)",
		Headers: []string{"epoch ms", "mix", "power/peak", "avg perf", "worst perf"},
	}
	for _, r := range rows {
		tbl.AddRow(report.F(r.EpochMs, 0), r.Mix, report.F(r.AvgPowerNorm, 3),
			report.F(r.AvgPerf, 3), report.F(r.WorstPerf, 3))
	}
	return tbl.Render(os.Stdout)
}
