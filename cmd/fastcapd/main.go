// fastcapd serves concurrent power-capping sessions over HTTP: each
// session is one independent capped run of the simulated many-core
// machine (a runner.Session), multiplexed with every other session on a
// bounded scheduler pool that steps tenants round-robin, one control
// epoch per turn. Per-epoch telemetry streams as NDJSON while the run
// is live; budgets can be retargeted mid-flight.
//
//	fastcapd -addr :8080 -workers 4 -max-sessions 64
//
//	# create a session, stream it, retarget it, fetch the result
//	curl -s localhost:8080/sessions -d '{"mix":"MIX3","budget_frac":0.6}'
//	curl -Ns localhost:8080/sessions/s1/stream
//	curl -s localhost:8080/sessions/s1/budget -d '{"budget_frac":0.5}'
//	curl -s localhost:8080/sessions/s1/result
//
// The daemon is also one node of a distributed cluster: /dist/clusters
// hosts the epoch-barrier coordinator and /dist/agents exposes local
// sessions as remote members of a coordinator elsewhere (see
// internal/dist). With -agent-journal set, agents journal every grant
// and a restarted daemon recovers them to their exact pre-crash state.
//
// Every serving layer is instrumented: GET /metrics exposes the
// fastcap_serve_*, fastcap_cluster_* and fastcap_dist_* families in
// Prometheus text format, and GET /readyz distinguishes an accepting
// daemon (200) from a draining one (503) so probes and scripts can
// gate on real readiness instead of sleeping.
//
// On SIGINT/SIGTERM the daemon drains: no new sessions are admitted,
// resident sessions run to completion (bounded by -drain-timeout, after
// which they are canceled at their next epoch boundary), streams end
// cleanly, then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/dist"
	"repro/internal/metrics"
	"repro/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "scheduler pool size (0 = GOMAXPROCS)")
		maxSess  = flag.Int("max-sessions", 64, "maximum resident sessions")
		drainFor = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown lets live sessions finish before canceling them")
		journal  = flag.String("agent-journal", "", "directory for remote-member grant journals (empty disables crash recovery)")
	)
	flag.Parse()

	if *journal != "" {
		if err := os.MkdirAll(*journal, 0o755); err != nil {
			log.Fatalf("fastcapd: agent journal dir: %v", err)
		}
	}

	reg := metrics.NewRegistry()
	start := time.Now()
	reg.GaugeFunc("fastcap_uptime_seconds", "Seconds since the daemon started.",
		func() float64 { return time.Since(start).Seconds() })
	reg.GaugeFunc("fastcap_goroutines", "Live goroutines in the daemon process.",
		func() float64 { return float64(runtime.NumGoroutine()) })

	met := serve.NewMetrics(reg)
	m := serve.NewManager(serve.Options{Workers: *workers, MaxSessions: *maxSess, Metrics: met})
	dm := dist.NewMetrics(reg)
	coord := dist.NewServer()
	coord.Metrics = dm
	agents := dist.NewAgentHost(serve.SessionFromSpec, *journal)
	agents.Metrics = dm

	mux := http.NewServeMux()
	mux.Handle("/", serve.NewHandler(m))
	mux.Handle("GET /metrics", reg.Handler())
	coord.Register(mux)
	agents.Register(mux)

	// No WriteTimeout on purpose: /stream, /events and /feed are
	// long-lived NDJSON follows, and a write timeout would sever them
	// mid-run. Idle-stream liveness comes from the heartbeat lines
	// instead; the read-side timeouts below still shed stuck or
	// slow-loris clients.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	// Bind before serving so ":0" callers (benchmarks, parallel CI jobs)
	// can read the resolved ephemeral port from the log line.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("fastcapd: listen %s: %v", *addr, err)
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("fastcapd: listening on %s", ln.Addr())
		errc <- srv.Serve(ln)
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("fastcapd: %s — draining (up to %s)", s, *drainFor)
	case err := <-errc:
		log.Fatalf("fastcapd: serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	// Stop the distributed layer first (agents keep their journals for
	// restart recovery), then drain local sessions.
	agents.Close()
	coord.Close()
	if err := m.Shutdown(ctx); err != nil {
		log.Printf("fastcapd: drain cut short: %v", err)
	}
	// Sessions are settled and streams ended; now close the listener and
	// any idle connections.
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("fastcapd: http shutdown: %v", err)
	}
	log.Printf("fastcapd: stopped")
}
