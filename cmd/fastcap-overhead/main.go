// fastcap-overhead measures the FastCap algorithm's per-invocation
// latency across core counts (the paper reports 33.5/64.9/133.5 µs at
// 16/32/64 cores) and the Table I complexity separation against the
// exhaustive and grid-search baselines.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	iters := flag.Int("iters", 5000, "iterations per measurement")
	t1iters := flag.Int("table1-iters", 200, "iterations for the Table I comparison")
	flag.Parse()

	rows, err := experiments.Overhead(*iters)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fastcap-overhead:", err)
		os.Exit(1)
	}
	tbl := &report.Table{
		Title:   "FastCap algorithm overhead (paper: 33.5/64.9/133.5 µs)",
		Headers: []string{"cores", "mean µs", "% of 5 ms epoch"},
	}
	for _, r := range rows {
		tbl.AddRow(fmt.Sprint(r.Cores), report.F(r.MeanUs, 1), report.F(r.PctOfEpoch, 2))
	}
	if err := tbl.Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fastcap-overhead:", err)
		os.Exit(1)
	}

	t1, err := experiments.Table1(*t1iters)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fastcap-overhead:", err)
		os.Exit(1)
	}
	tbl2 := &report.Table{
		Title:   "Table I — measured decision latency",
		Headers: []string{"method", "cores", "mean µs", "complexity"},
	}
	for _, r := range t1 {
		tbl2.AddRow(r.Method, fmt.Sprint(r.Cores), report.F(r.MeanUs, 1), r.Note)
	}
	if err := tbl2.Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fastcap-overhead:", err)
		os.Exit(1)
	}
}
