// fastcap-sim runs one Table III workload under one capping policy on
// the simulated many-core server and prints the per-epoch power/DVFS
// series plus a performance summary against the all-max baseline.
//
// The run is driven through the step-wise session API (runner.Session);
// with -stream, each epoch's record is printed the moment the epoch
// completes instead of as a post-run table — the mode a monitoring
// pipeline would consume.
//
// Example:
//
//	fastcap-sim -mix MIX3 -policy FastCap -budget 0.6 -cores 16 -epochs 40
//	fastcap-sim -mix MIX3 -stream            # live per-epoch telemetry
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/policy"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	var (
		mixName   = flag.String("mix", "MIX3", "Table III workload name (ILP1..MIX4)")
		polName   = flag.String("policy", "FastCap", "policy: FastCap|CPU-only|Freq-Par|Eql-Pwr|Eql-Freq|MaxBIPS|Greedy|baseline")
		budget    = flag.Float64("budget", 0.60, "power budget as a fraction of peak")
		cores     = flag.Int("cores", 16, "number of cores (multiple of 4)")
		epochs    = flag.Int("epochs", 40, "epochs to simulate")
		epochMs   = flag.Float64("epoch-ms", 1.0, "epoch length in milliseconds (paper: 5)")
		ooo       = flag.Bool("ooo", false, "idealized out-of-order cores")
		ctls      = flag.Int("controllers", 1, "memory controllers")
		skew      = flag.Bool("skew", false, "skewed controller access distribution")
		seed      = flag.Int64("seed", 1, "simulation seed")
		perEpoch  = flag.Bool("series", true, "print the per-epoch series")
		stream    = flag.Bool("stream", false, "stream each epoch's record as it completes (NDJSON to stdout)")
		noBaselin = flag.Bool("no-baseline", false, "skip the baseline run (no normalized perf)")
		jsonPath  = flag.String("json", "", "also write the full result record as JSON to this file ('-' = stdout)")
	)
	flag.Parse()
	// Keep the Go runtime from killing the process with SIGPIPE when a
	// -stream consumer (head, a disconnected pipe) goes away: with the
	// signal ignored, writes return EPIPE as an ordinary error and the
	// run winds down cleanly at the next epoch boundary.
	signal.Ignore(syscall.SIGPIPE)
	if err := run(*mixName, *polName, *budget, *cores, *epochs, *epochMs, *ooo, *ctls, *skew, *seed, *perEpoch, *stream, *noBaselin, *jsonPath); err != nil {
		if errors.Is(err, syscall.EPIPE) {
			return // closed pipe: the consumer has everything it wanted
		}
		fmt.Fprintln(os.Stderr, "fastcap-sim:", err)
		os.Exit(1)
	}
}

func pickPolicy(name string) (policy.Policy, error) {
	switch name {
	case "FastCap":
		return policy.NewFastCap(), nil
	case "CPU-only":
		return policy.NewCPUOnly(), nil
	case "Freq-Par":
		return policy.NewFreqPar(), nil
	case "Eql-Pwr":
		return policy.NewEqlPwr(), nil
	case "Eql-Freq":
		return policy.NewEqlFreq(), nil
	case "MaxBIPS":
		return policy.NewMaxBIPS(), nil
	case "Greedy":
		return policy.NewGreedy(), nil
	case "baseline":
		return nil, nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}

// streamRecord is the NDJSON shape emitted per epoch under -stream.
type streamRecord struct {
	Epoch     int     `json:"epoch"`
	PowerW    float64 `json:"power_w"`
	PowerNorm float64 `json:"power_norm"`
	BudgetW   float64 `json:"budget_w"`
	CoresW    float64 `json:"cores_w"`
	MemW      float64 `json:"mem_w"`
	MemMHz    float64 `json:"mem_mhz"`
}

func run(mixName, polName string, budget float64, cores, epochs int, epochMs float64, ooo bool, ctls int, skew bool, seed int64, series, stream, noBaseline bool, jsonPath string) error {
	mix, err := workload.MixByName(mixName)
	if err != nil {
		return err
	}
	pol, err := pickPolicy(polName)
	if err != nil {
		return err
	}
	sc := sim.DefaultConfig(cores)
	sc.EpochNs = epochMs * 1e6
	sc.ProfileNs = sc.EpochNs / 10
	if sc.ProfileNs > 3e5 {
		sc.ProfileNs = 3e5 // paper's 300 µs profiling phase
	}
	sc.OoO = ooo
	sc.Seed = seed
	if ctls > 1 {
		sc.Controllers = ctls
		sc.BanksPerController = sc.BanksPerController / ctls
		sc.SkewedAccess = skew
	}
	cfg := runner.Config{Sim: sc, Mix: mix, BudgetFrac: budget, Epochs: epochs, Policy: pol}

	var opts []runner.SessionOption
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var streamErr error
	if stream {
		if jsonPath == "-" {
			return fmt.Errorf("-json - conflicts with -stream: stdout carries the NDJSON stream; write the result record to a file")
		}
		enc := json.NewEncoder(os.Stdout)
		opts = append(opts, runner.WithObserver(func(e runner.EpochRecord) {
			err := enc.Encode(streamRecord{
				Epoch:     e.Epoch,
				PowerW:    e.AvgPowerW,
				PowerNorm: e.AvgPowerW / e.PeakW,
				BudgetW:   e.BudgetW,
				CoresW:    e.CoresW,
				MemW:      e.MemW,
				MemMHz:    sc.MemLadder.Freq(e.MemStep) * 1000,
			})
			// A dead consumer (EPIPE etc.) aborts the run at the next
			// epoch boundary instead of simulating into the void.
			if err != nil && streamErr == nil {
				streamErr = err
				cancel()
			}
		}))
	}
	ses, err := runner.NewSession(cfg, opts...)
	if err != nil {
		return err
	}
	// In stream mode stdout carries pure NDJSON; the human summary goes
	// to stderr so the stream stays machine-consumable.
	out := io.Writer(os.Stdout)
	if stream {
		out = os.Stderr
	}
	err = finish(ctx, out, ses, cfg, series && !stream, noBaseline, jsonPath)
	if streamErr != nil {
		if errors.Is(streamErr, syscall.EPIPE) {
			// The consumer closed the stream; that ends the run, it does
			// not fail it. Skip the summary — nobody is reading stdout —
			// and exit zero.
			return streamErr
		}
		return fmt.Errorf("streaming telemetry: %w", streamErr)
	}
	return err
}

// finish drives the session to completion and prints the summary.
func finish(ctx context.Context, out io.Writer, ses *runner.Session, cfg runner.Config, series, noBaseline bool, jsonPath string) error {
	mix, sc := cfg.Mix, cfg.Sim
	for {
		if _, err := ses.Step(ctx); err != nil {
			if errors.Is(err, runner.ErrDone) {
				break
			}
			return err
		}
	}
	res := ses.Result()
	if jsonPath != "" {
		if err := writeJSON(jsonPath, res); err != nil {
			return err
		}
	}

	fmt.Fprintf(out, "workload %s on %d cores (%s), policy %s, budget %.0f%% of %.0f W peak\n\n",
		mix.Name, sc.Cores, mode(sc.OoO), res.PolicyName, cfg.BudgetFrac*100, res.PeakW)

	if series {
		tbl := &report.Table{
			Title:   "Per-epoch series",
			Headers: []string{"epoch", "power W", "power/peak", "cores W", "mem W", "mem MHz"},
		}
		for _, e := range res.Epochs {
			tbl.AddRow(
				fmt.Sprint(e.Epoch),
				report.F(e.AvgPowerW, 1),
				report.F(e.AvgPowerW/res.PeakW, 3),
				report.F(e.CoresW, 1),
				report.F(e.MemW, 1),
				report.F(sc.MemLadder.Freq(e.MemStep)*1000, 0),
			)
		}
		if err := tbl.Render(out); err != nil {
			return err
		}
	}

	fmt.Fprintf(out, "run-average power: %.1f W (%.1f%% of peak; budget %.1f W)\n",
		res.AvgPowerW(), res.AvgPowerW()/res.PeakW*100, res.BudgetW)
	fmt.Fprintf(out, "max epoch power:   %.1f W (%.1f%% of peak)\n",
		res.MaxEpochPowerW(), res.MaxEpochPowerW()/res.PeakW*100)

	if cfg.Policy == nil || noBaseline {
		return nil
	}
	bcfg := cfg
	bcfg.Policy = nil
	base, err := runner.Run(bcfg)
	if err != nil {
		return err
	}
	norm, err := res.NormalizedPerf(base)
	if err != nil {
		return err
	}
	s := stats.SummarizePerf(norm)
	fmt.Fprintf(out, "\nnormalized performance vs all-max baseline (1.0 = no loss):\n")
	fmt.Fprintf(out, "  average %.3f   worst %.3f   Jain fairness %.3f\n", s.Avg, s.Worst, s.Jain)
	wl, err := workload.Instantiate(mix, sc.Cores)
	if err != nil {
		return err
	}
	tbl := &report.Table{Headers: []string{"core", "app", "norm perf"}}
	for i, v := range norm {
		tbl.AddRow(fmt.Sprint(i), wl.Apps[i].Name, report.F(v, 3))
	}
	fmt.Fprintln(out)
	return tbl.Render(out)
}

// writeJSON serializes the run record for downstream tooling (plots,
// regression tracking).
func writeJSON(path string, res *runner.Result) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

func mode(ooo bool) string {
	if ooo {
		return "out-of-order"
	}
	return "in-order"
}
